package rpc

// The SCADS binary wire format. Every message is one length-prefixed
// frame:
//
//	frameLen uint32 little-endian | version byte | message
//
// where frameLen covers everything after the 4-byte prefix. Requests
// and responses are encoded with hand-rolled, zero-reflection
// append-style encoders: fixed field order, uvarint lengths and
// counts, zigzag varints for signed integers, little-endian for the
// float-free fixed-width fields. Unused fields cost one zero byte
// each, so the envelope-style Request/Response structs stay cheap even
// though most fields are empty on any given method.
//
// Decoders never trust a length or count before checking it against
// the bytes actually present, so a truncated or corrupted frame (or a
// hostile one claiming a multi-gigabyte payload) errors out without
// over-allocating and without panicking; batch nesting is depth-capped
// the same way.
//
// Memory ownership is deliberately asymmetric between the two
// directions:
//
//   - Requests (decoded by the server) are DETACHED: every byte field
//     is copied into one per-request arena sized from the frame, so
//     handlers — and the storage engine behind them, which retains
//     applied records in the memtable and apply log — own what they
//     keep, and the server can reuse a single per-connection read
//     buffer across frames. Cost: one arena allocation per request,
//     regardless of how many records it carries.
//
//   - Responses (decoded by the client) ALIAS their frame buffer (one
//     exactly-sized allocation per frame, never pooled), so a scan
//     page of N records costs O(1) allocations. Coordinator-side
//     consumers are transient: anything retained beyond the call is
//     copied at a higher layer (rows decode into fresh maps,
//     migration re-encodes records onward, caches clone).
//
// Encoding buffers are pooled: an encoded frame is built — length
// prefix included — in a single reusable buffer and handed to the
// socket in one write. Oversized buffers are dropped instead of
// pooled so one huge frame cannot pin its capacity forever.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"scads/internal/record"
)

const (
	// wireVersion is the first byte of every frame; bump on any
	// incompatible layout change so mismatched peers fail fast with a
	// clear error instead of a garbled decode.
	wireVersion = 1

	// maxFrameSize bounds one frame: a corrupt or hostile length
	// prefix does not get to allocate gigabytes, and both encode
	// paths enforce the same bound (a response that would overflow it
	// is replaced by an error response; an oversized request fails
	// the call with a semantic error, not ErrUnreachable). Node-side
	// page byte budgets (cluster.Node scan/snapshot, storage
	// ScanSince deltas) keep real pages an order of magnitude below
	// this.
	maxFrameSize = 64 << 20

	// maxPooledFrame bounds what goes back into framePool: buffers
	// that grew past it are left for the GC so one giant frame does
	// not permanently inflate the pool.
	maxPooledFrame = 1 << 20

	// maxBatchDepth bounds MethodBatch nesting so a hostile frame
	// cannot recurse the decoder into stack exhaustion. Real traffic
	// nests exactly one envelope deep.
	maxBatchDepth = 4
)

// errCorruptFrame is the decode-failure class: the peer spoke the
// right framing but the message inside did not parse. It is
// deliberately distinct from ErrUnreachable — a peer that answers
// garbage is broken, not down — but the transport still tears the
// connection down, because a desynchronised byte stream cannot be
// re-synchronised.
var errCorruptFrame = errors.New("rpc: corrupt wire frame")

// Response flag bits.
const (
	respFlagFound byte = 1 << 0
	respFlagMore  byte = 1 << 1
)

// Method codes keep the hot field to one byte. Code 0 escapes to an
// inline string for methods the table does not know (forward
// compatibility for coordinator-served admin methods).
var methodCodes = map[string]byte{
	MethodPing:          1,
	MethodGet:           2,
	MethodPut:           3,
	MethodDelete:        4,
	MethodScan:          5,
	MethodApply:         6,
	MethodDropRange:     7,
	MethodStats:         8,
	MethodBatch:         9,
	MethodRangeSnapshot: 10,
	MethodRangeDelta:    11,
	MethodRangeFence:    12,
	MethodRepairs:       13,
}

var methodNames = [...]string{
	1:  MethodPing,
	2:  MethodGet,
	3:  MethodPut,
	4:  MethodDelete,
	5:  MethodScan,
	6:  MethodApply,
	7:  MethodDropRange,
	8:  MethodStats,
	9:  MethodBatch,
	10: MethodRangeSnapshot,
	11: MethodRangeDelta,
	12: MethodRangeFence,
	13: MethodRepairs,
}

// framePool recycles encode buffers, so steady-state encoding
// allocates nothing; buffers that ballooned past maxPooledFrame are
// not returned.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

func putFrameBuf(b *[]byte) {
	if cap(*b) > maxPooledFrame {
		return
	}
	framePool.Put(b)
}

// appendBlob appends a uvarint length followed by the bytes.
func appendBlob(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// appendStr appends a uvarint length followed by the string bytes.
func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendVarint appends a zigzag-encoded signed integer.
func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

// wireReader walks a frame buffer. Every accessor validates lengths
// against the bytes remaining before touching them. With a non-nil
// arena, byte fields are copied into it (detached from b); otherwise
// they alias b. The arena is pre-sized to the frame, and the total
// copied can never exceed the frame, so it never reallocates.
type wireReader struct {
	b     []byte
	arena []byte
}

// detach copies v into the arena when one is set; otherwise returns v
// (an alias of the frame) unchanged.
func (r *wireReader) detach(v []byte) []byte {
	if r.arena == nil || v == nil {
		return v
	}
	start := len(r.arena)
	r.arena = append(r.arena, v...)
	return r.arena[start:len(r.arena):len(r.arena)]
}

func (r *wireReader) len() int { return len(r.b) }

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", errCorruptFrame)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *wireReader) varint() (int64, error) {
	u, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

func (r *wireReader) byteVal() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("%w: truncated", errCorruptFrame)
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// rawBlob returns the next length-prefixed byte field as an alias of
// the frame buffer. Zero length decodes as nil.
func (r *wireReader) rawBlob() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: blob length %d exceeds %d remaining", errCorruptFrame, n, len(r.b))
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out, nil
}

// blob is rawBlob under the reader's ownership mode: detached into
// the arena when one is set, aliasing otherwise.
func (r *wireReader) blob() ([]byte, error) {
	b, err := r.rawBlob()
	if err != nil {
		return nil, err
	}
	return r.detach(b), nil
}

// str converts straight from the frame alias — the string conversion
// is itself the copy, so it never goes through the arena.
func (r *wireReader) str() (string, error) {
	b, err := r.rawBlob()
	return string(b), err
}

// Minimum encoded size per element type: what each costs on the wire
// when every field is zero. count() rejects any claimed count that
// could not fit in the remaining bytes at these densities, and decode
// grows slices incrementally (capped initial capacity), so a hostile
// count inside a valid-length frame can neither trigger a huge
// up-front allocation nor grow memory faster than the attacker
// supplies actual parseable bytes.
const (
	minWireString   = 1  // length byte
	minWirePred     = 3  // column len + op + value len
	minWireRecord   = 4  // flags + version + key len + value len
	minWireRequest  = 16 // every fixed field at its zero encoding
	minWireResponse = 13
)

// maxPrealloc caps the capacity hint decode passes to make for
// count-prefixed slices; anything larger grows by append as elements
// actually parse.
const maxPrealloc = 1 << 12

func preallocHint(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// count reads an element count for elements of at least minElem
// encoded bytes, rejecting counts that could not possibly fit in the
// remaining bytes.
func (r *wireReader) count(minElem int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.b)/minElem) {
		return 0, fmt.Errorf("%w: count %d exceeds %d remaining bytes (min element size %d)", errCorruptFrame, n, len(r.b), minElem)
	}
	return int(n), nil
}

// appendRequest appends the wire encoding of req to dst.
func appendRequest(dst []byte, req *Request) []byte {
	dst = binary.AppendUvarint(dst, req.ID)
	if code, ok := methodCodes[req.Method]; ok {
		dst = append(dst, code)
	} else {
		dst = append(dst, 0)
		dst = appendStr(dst, req.Method)
	}
	dst = appendStr(dst, req.Namespace)
	dst = appendStr(dst, req.Tenant)
	dst = appendBlob(dst, req.Key)
	dst = appendBlob(dst, req.Value)
	dst = appendBlob(dst, req.Start)
	dst = appendBlob(dst, req.End)
	dst = appendVarint(dst, int64(req.Limit))
	dst = binary.AppendUvarint(dst, uint64(len(req.Projection)))
	for _, s := range req.Projection {
		dst = appendStr(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Preds)))
	for _, p := range req.Preds {
		dst = appendStr(dst, p.Column)
		dst = binary.AppendUvarint(dst, uint64(p.Op))
		dst = appendBlob(dst, p.Value)
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Records)))
	for _, rec := range req.Records {
		dst = rec.MarshalTo(dst)
	}
	dst = binary.AppendUvarint(dst, req.Since)
	dst = binary.AppendUvarint(dst, req.Epoch)
	if req.Fence {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(req.Batch)))
	for i := range req.Batch {
		dst = appendRequest(dst, &req.Batch[i])
	}
	return dst
}

func readMethod(r *wireReader) (string, error) {
	code, err := r.byteVal()
	if err != nil {
		return "", err
	}
	if code == 0 {
		return r.str()
	}
	if int(code) >= len(methodNames) || methodNames[code] == "" {
		return "", fmt.Errorf("%w: unknown method code %d", errCorruptFrame, code)
	}
	return methodNames[code], nil
}

func readRequest(r *wireReader, depth int, req *Request) error {
	if depth > maxBatchDepth {
		return fmt.Errorf("%w: batch nesting exceeds depth %d", errCorruptFrame, maxBatchDepth)
	}
	var err error
	if req.ID, err = r.uvarint(); err != nil {
		return err
	}
	if req.Method, err = readMethod(r); err != nil {
		return err
	}
	if req.Namespace, err = r.str(); err != nil {
		return err
	}
	if req.Tenant, err = r.str(); err != nil {
		return err
	}
	if req.Key, err = r.blob(); err != nil {
		return err
	}
	if req.Value, err = r.blob(); err != nil {
		return err
	}
	if req.Start, err = r.blob(); err != nil {
		return err
	}
	if req.End, err = r.blob(); err != nil {
		return err
	}
	limit, err := r.varint()
	if err != nil {
		return err
	}
	req.Limit = int(limit)
	n, err := r.count(minWireString)
	if err != nil {
		return err
	}
	if n > 0 {
		req.Projection = make([]string, 0, preallocHint(n))
		for i := 0; i < n; i++ {
			s, err := r.str()
			if err != nil {
				return err
			}
			req.Projection = append(req.Projection, s)
		}
	}
	if n, err = r.count(minWirePred); err != nil {
		return err
	}
	if n > 0 {
		req.Preds = make([]ScanPred, 0, preallocHint(n))
		for i := 0; i < n; i++ {
			var p ScanPred
			if p.Column, err = r.str(); err != nil {
				return err
			}
			op, err := r.uvarint()
			if err != nil {
				return err
			}
			p.Op = ScanPredOp(op)
			if p.Value, err = r.blob(); err != nil {
				return err
			}
			req.Preds = append(req.Preds, p)
		}
	}
	if req.Records, err = readRecords(r); err != nil {
		return err
	}
	if req.Since, err = r.uvarint(); err != nil {
		return err
	}
	if req.Epoch, err = r.uvarint(); err != nil {
		return err
	}
	fence, err := r.byteVal()
	if err != nil {
		return err
	}
	req.Fence = fence != 0
	if n, err = r.count(minWireRequest); err != nil {
		return err
	}
	if n > 0 {
		req.Batch = make([]Request, 0, preallocHint(n))
		for i := 0; i < n; i++ {
			var sub Request
			if err := readRequest(r, depth+1, &sub); err != nil {
				return err
			}
			req.Batch = append(req.Batch, sub)
		}
	}
	return nil
}

func readRecords(r *wireReader) ([]record.Record, error) {
	n, err := r.count(minWireRecord)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	recs := make([]record.Record, 0, preallocHint(n))
	for i := 0; i < n; i++ {
		var rec record.Record
		rest, err := rec.Unmarshal(r.b)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", errCorruptFrame, i, err)
		}
		r.b = rest
		rec.Key = r.detach(rec.Key)
		rec.Value = r.detach(rec.Value)
		recs = append(recs, rec)
	}
	return recs, nil
}

// appendResponse appends the wire encoding of resp to dst.
func appendResponse(dst []byte, resp *Response) []byte {
	dst = binary.AppendUvarint(dst, resp.ID)
	var flags byte
	if resp.Found {
		flags |= respFlagFound
	}
	if resp.More {
		flags |= respFlagMore
	}
	dst = append(dst, flags)
	dst = appendStr(dst, resp.Err)
	dst = appendBlob(dst, resp.Value)
	dst = binary.AppendUvarint(dst, resp.Version)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Records)))
	for _, rec := range resp.Records {
		dst = rec.MarshalTo(dst)
	}
	dst = appendVarint(dst, resp.RecordCount)
	dst = appendVarint(dst, int64(resp.QueueDepth))
	dst = binary.AppendUvarint(dst, resp.Watermark)
	dst = binary.AppendUvarint(dst, resp.Epoch)
	dst = appendVarint(dst, int64(resp.Fenced))
	dst = appendBlob(dst, resp.Resume)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Batch)))
	for i := range resp.Batch {
		dst = appendResponse(dst, &resp.Batch[i])
	}
	return dst
}

func readResponse(r *wireReader, depth int, resp *Response) error {
	if depth > maxBatchDepth {
		return fmt.Errorf("%w: batch nesting exceeds depth %d", errCorruptFrame, maxBatchDepth)
	}
	var err error
	if resp.ID, err = r.uvarint(); err != nil {
		return err
	}
	flags, err := r.byteVal()
	if err != nil {
		return err
	}
	resp.Found = flags&respFlagFound != 0
	resp.More = flags&respFlagMore != 0
	if resp.Err, err = r.str(); err != nil {
		return err
	}
	if resp.Value, err = r.blob(); err != nil {
		return err
	}
	if resp.Version, err = r.uvarint(); err != nil {
		return err
	}
	if resp.Records, err = readRecords(r); err != nil {
		return err
	}
	if resp.RecordCount, err = r.varint(); err != nil {
		return err
	}
	qd, err := r.varint()
	if err != nil {
		return err
	}
	resp.QueueDepth = int(qd)
	if resp.Watermark, err = r.uvarint(); err != nil {
		return err
	}
	if resp.Epoch, err = r.uvarint(); err != nil {
		return err
	}
	fenced, err := r.varint()
	if err != nil {
		return err
	}
	resp.Fenced = int(fenced)
	if resp.Resume, err = r.blob(); err != nil {
		return err
	}
	n, err := r.count(minWireResponse)
	if err != nil {
		return err
	}
	if n > 0 {
		resp.Batch = make([]Response, 0, preallocHint(n))
		for i := 0; i < n; i++ {
			var sub Response
			if err := readResponse(r, depth+1, &sub); err != nil {
				return err
			}
			resp.Batch = append(resp.Batch, sub)
		}
	}
	return nil
}

// checkFramePayload validates the version byte and returns the message
// bytes.
func checkFramePayload(b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty frame", errCorruptFrame)
	}
	if b[0] != wireVersion {
		return nil, fmt.Errorf("%w: wire version %d (want %d)", errCorruptFrame, b[0], wireVersion)
	}
	return b[1:], nil
}

// decodeRequest decodes one frame payload (version byte included)
// into a Request. Byte fields are detached into a per-request arena
// (see the package ownership rules above): handlers retain what they
// like and the caller may reuse b for the next frame.
func decodeRequest(b []byte) (Request, error) {
	msg, err := checkFramePayload(b)
	if err != nil {
		return Request{}, err
	}
	r := wireReader{b: msg, arena: make([]byte, 0, len(msg))}
	var req Request
	if err := readRequest(&r, 0, &req); err != nil {
		return Request{}, err
	}
	if r.len() != 0 {
		return Request{}, fmt.Errorf("%w: %d trailing bytes", errCorruptFrame, r.len())
	}
	return req, nil
}

// decodeResponse decodes one frame payload (version byte included)
// into a Response. Byte fields alias b.
func decodeResponse(b []byte) (Response, error) {
	msg, err := checkFramePayload(b)
	if err != nil {
		return Response{}, err
	}
	r := wireReader{b: msg}
	var resp Response
	if err := readResponse(&r, 0, &resp); err != nil {
		return Response{}, err
	}
	if r.len() != 0 {
		return Response{}, fmt.Errorf("%w: %d trailing bytes", errCorruptFrame, r.len())
	}
	return resp, nil
}

// errFrameOverflow reports an encoded message that would exceed
// maxFrameSize. It is a semantic error — the payload is too big, the
// peer is fine — so it is never classified unreachable and never
// retried.
var errFrameOverflow = errors.New("rpc: encoded frame exceeds size limit")

// encodeRequestFrame builds a complete frame (length prefix, version,
// message) for req in a pooled buffer. The caller must return the
// buffer with putFrameBuf after the write completes. An encoding past
// maxFrameSize returns errFrameOverflow — the peer would reject it as
// corrupt and tear the connection down, so it must not be sent.
func encodeRequestFrame(req *Request) (*[]byte, error) {
	return encodeRequestFrameLimit(req, maxFrameSize)
}

func encodeRequestFrameLimit(req *Request, limit int) (*[]byte, error) {
	bp := getFrameBuf()
	b := append((*bp)[:0], 0, 0, 0, 0, wireVersion)
	b = appendRequest(b, req)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	*bp = b
	if len(b)-4 > limit {
		putFrameBuf(bp)
		return nil, fmt.Errorf("%w (%d bytes)", errFrameOverflow, len(b)-4)
	}
	return bp, nil
}

// encodeResponseFrame is encodeRequestFrame for the reply direction.
// An overflowing response is replaced by an error response carrying
// the same correlation ID, so the caller gets a clear semantic error
// instead of a torn connection and an unreachable misclassification.
func encodeResponseFrame(resp *Response) *[]byte {
	return encodeResponseFrameLimit(resp, maxFrameSize)
}

func encodeResponseFrameLimit(resp *Response, limit int) *[]byte {
	bp := getFrameBuf()
	b := append((*bp)[:0], 0, 0, 0, 0, wireVersion)
	b = appendResponse(b, resp)
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	*bp = b
	if len(b)-4 > limit {
		errResp := Response{ID: resp.ID, Err: fmt.Sprintf("%v (%d bytes)", errFrameOverflow, len(b)-4)}
		// Rebuild unconditionally — the substitute is inherently tiny,
		// so no second size check (which could recurse) is needed.
		b = append((*bp)[:0], 0, 0, 0, 0, wireVersion)
		b = appendResponse(b, &errResp)
		binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
		*bp = b
	}
	return bp
}

// readFrame reads one length-prefixed frame payload from rd. The
// returned buffer is exactly sized and owned by the caller (decoded
// responses alias it), so it is never pooled.
func readFrame(rd io.Reader) ([]byte, error) {
	n, err := readFrameLen(rd)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(rd, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readFrameInto is readFrame against a reusable buffer, for the
// server side where request decode detaches every retained byte: buf
// grows to the largest frame the connection has carried and is reused
// for the next one.
func readFrameInto(rd io.Reader, buf *[]byte) ([]byte, error) {
	n, err := readFrameLen(rd)
	if err != nil {
		return nil, err
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(rd, b); err != nil {
		return nil, err
	}
	return b, nil
}

func readFrameLen(rd io.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, fmt.Errorf("%w: zero-length frame", errCorruptFrame)
	}
	if n > maxFrameSize {
		return 0, fmt.Errorf("%w: frame length %d exceeds limit %d", errCorruptFrame, n, maxFrameSize)
	}
	return int(n), nil
}
