package rpc

// Tests for the multiplexed pipelined transport: interleaving
// correctness on one connection, per-call deadlines, transparent
// redial after a peer restart, and clean server shutdown. The
// benchmarks at the bottom compare the binary wire against the gob
// lockstep protocol it replaced (gob survives only here and in the
// e15 experiment, as the measured baseline).

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"scads/internal/record"
)

// TestMuxPipelinedInterleaving drives many concurrent calls through
// one transport — hence one multiplexed connection — and verifies
// every response matches its request. Run under -race in CI.
func TestMuxPipelinedInterleaving(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()

	const goroutines = 64
	const callsPer = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				key := []byte(fmt.Sprintf("g%d-i%d", g, i))
				if _, err := tr.Call(addr, Request{Method: MethodPut, Key: key, Value: key}); err != nil {
					errs <- err
					return
				}
				resp, err := tr.Call(addr, Request{Method: MethodGet, Key: key})
				if err != nil {
					errs <- err
					return
				}
				if !resp.Found || !bytes.Equal(resp.Value, key) {
					errs <- fmt.Errorf("get %q = %+v", key, resp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := tr.numConns(); n != 1 {
		t.Fatalf("pipelined calls used %d conns, want 1 multiplexed conn", n)
	}
}

// slowHandler blocks MethodScan calls until released; everything else
// answers immediately.
type slowHandler struct {
	entered chan struct{}
	release chan struct{}
}

func (h *slowHandler) Serve(req Request) Response {
	if req.Method == MethodScan {
		h.entered <- struct{}{}
		<-h.release
		return Response{Found: true, Value: []byte("slow")}
	}
	return Response{Found: true}
}

// TestMuxSlowCallDoesNotBlockConnection: with a long scan in flight on
// the connection, pings behind it must still complete — the server
// dispatches frames concurrently instead of serving the connection in
// lockstep.
func TestMuxSlowCallDoesNotBlockConnection(t *testing.T) {
	h := &slowHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tr := NewTCPTransport()
	defer tr.Close()

	slowDone := make(chan Response, 1)
	go func() {
		resp, _ := tr.Call(addr, Request{Method: MethodScan})
		slowDone <- resp
	}()
	<-h.entered // the scan is parked inside its handler

	// 20 fast calls overtake it on the same connection.
	for i := 0; i < 20; i++ {
		if _, err := tr.Call(addr, Request{Method: MethodPing}); err != nil {
			t.Fatalf("ping %d behind a slow scan: %v", i, err)
		}
	}
	if n := tr.numConns(); n != 1 {
		t.Fatalf("fast calls escaped to %d conns; want overtaking on the 1 shared conn", n)
	}
	select {
	case <-slowDone:
		t.Fatal("slow scan completed before release")
	default:
	}
	close(h.release)
	resp := <-slowDone
	if string(resp.Value) != "slow" {
		t.Fatalf("slow scan resp = %+v", resp)
	}
}

// TestMuxServerRestartRedial is the stale-connection regression test:
// a server that bounces between calls must not surface as a spurious
// ErrUnreachable — the transport redials once transparently.
func TestMuxServerRestartRedial(t *testing.T) {
	h := newEchoHandler()
	s1 := NewServer(h)
	addr, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport()
	defer tr.Close()

	if _, err := tr.Call(addr, Request{Method: MethodPut, Key: []byte("k"), Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	// Bounce the server on the same address; the transport still holds
	// the now-dead multiplexed connection.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := NewServer(h)
	if _, err := s2.Listen(addr); err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer s2.Close()

	// One logical call, no caller-visible retry loop: the stale conn
	// fails, the transport redials, the call succeeds.
	resp, err := tr.Call(addr, Request{Method: MethodGet, Key: []byte("k")})
	if err != nil {
		t.Fatalf("call across server bounce = %v (spurious unreachable)", err)
	}
	if !resp.Found || string(resp.Value) != "v" {
		t.Fatalf("resp across bounce = %+v", resp)
	}
}

// TestMuxFreshDialFailureIsUnreachable: the redial courtesy applies
// only to stale pooled connections — a peer that is actually down
// still classifies unreachable on the first call.
func TestMuxFreshDialFailureIsUnreachable(t *testing.T) {
	tr := NewTCPTransport()
	tr.Timeout = 200 * time.Millisecond
	defer tr.Close()
	_, err := tr.Call("127.0.0.1:1", Request{Method: MethodPing})
	if !IsUnreachable(err) {
		t.Fatalf("dead peer error = %v, want unreachable", err)
	}
}

// TestMuxCallerIDNotMutated: correlation IDs are transport-internal;
// colliding caller-set IDs must not cross responses.
func TestMuxCallerIDNotMutated(t *testing.T) {
	addr, _, cleanup := startServer(t)
	defer cleanup()
	tr := NewTCPTransport()
	defer tr.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("id-%d", i))
			// Every caller claims the same request ID.
			if _, err := tr.Call(addr, Request{ID: 5, Method: MethodPut, Key: key, Value: key}); err != nil {
				errs <- err
				return
			}
			resp, err := tr.Call(addr, Request{ID: 5, Method: MethodGet, Key: key})
			if err != nil {
				errs <- err
				return
			}
			if !resp.Found || !bytes.Equal(resp.Value, key) {
				errs <- fmt.Errorf("colliding-ID call got %+v for %q", resp, key)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMuxPerCallTimeout: a parked call times out on its own deadline
// while the connection keeps serving others.
func TestMuxPerCallTimeout(t *testing.T) {
	h := &slowHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(h.release) // let the parked handler drain at teardown
	tr := NewTCPTransport()
	tr.Timeout = 150 * time.Millisecond
	defer tr.Close()

	start := time.Now()
	_, err = tr.Call(addr, Request{Method: MethodScan})
	if !IsUnreachable(err) {
		t.Fatalf("timed-out call = %v, want unreachable-classified timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// The connection survives for other traffic.
	if _, err := tr.Call(addr, Request{Method: MethodPing}); err != nil {
		t.Fatalf("ping after sibling timeout: %v", err)
	}
}

// blockingHandler parks every call until released, signalling entry.
type blockingHandler struct {
	entered chan struct{}
	release chan struct{}
}

func (h *blockingHandler) Serve(req Request) Response {
	h.entered <- struct{}{}
	<-h.release
	return Response{Found: true}
}

// TestServerCloseJoinsHandlers: Server.Close must not return while a
// handler goroutine is still running (the shutdown race fixed in this
// change).
func TestServerCloseJoinsHandlers(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 1), release: make(chan struct{})}
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport()
	defer tr.Close()

	go tr.Call(addr, Request{Method: MethodPing}) //nolint:errcheck // the call dies with the server
	<-h.entered

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Server.Close returned while a handler was still running")
	case <-time.After(100 * time.Millisecond):
	}
	close(h.release)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Server.Close never returned after handlers finished")
	}
}

// TestMuxBrokenConnFailsInFlight: when the server dies mid-call, every
// pipelined in-flight call fails promptly with ErrUnreachable instead
// of hanging to its deadline.
func TestMuxBrokenConnFailsInFlight(t *testing.T) {
	h := &blockingHandler{entered: make(chan struct{}, 8), release: make(chan struct{})}
	s := NewServer(h)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTCPTransport()
	tr.Timeout = 10 * time.Second
	defer tr.Close()

	const inFlight = 8
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Either outcome is legal (response raced the close); the
			// assertion is that nothing hangs past the join below.
			tr.Call(addr, Request{Method: MethodPing}) //nolint:errcheck
		}()
	}
	for i := 0; i < inFlight; i++ {
		<-h.entered
	}
	close(h.release) // handlers finish, but the conn is about to die under them
	s.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight calls hung after server death")
	}
}

// --- gob lockstep baseline (the protocol this change removed) -------

// gobServe serves the old one-request-at-a-time gob protocol on conn.
func gobServe(conn net.Conn, h Handler) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := h.Serve(req)
		resp.ID = req.ID
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// gobBaseline is a minimal reconstruction of the removed transport:
// gob encoding, one connection, strictly serial calls.
type gobBaseline struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	id   uint64
}

func dialGobBaseline(addr string) (*gobBaseline, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &gobBaseline{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *gobBaseline) call(req Request) (Response, error) {
	c.id++
	req.ID = c.id
	if err := c.enc.Encode(&req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, err
	}
	if resp.ID != req.ID {
		return Response{}, errors.New("rpc: response ID mismatch")
	}
	return resp, nil
}

func startGobServer(tb testing.TB, h Handler) (addr string, cleanup func()) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go gobServe(conn, h)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func benchPayloadRequest() Request {
	return Request{
		Method:    MethodApply,
		Namespace: "users",
		Records: []record.Record{
			{Key: []byte("user:000000000001"), Value: bytes.Repeat([]byte("v"), 128), Version: 1},
			{Key: []byte("user:000000000002"), Value: bytes.Repeat([]byte("w"), 128), Version: 2},
		},
	}
}

// BenchmarkRPCRoundTrip measures the binary multiplexed wire: run
// with -benchmem and compare allocs/op against
// BenchmarkRPCRoundTripGob, the removed protocol.
func BenchmarkRPCRoundTrip(b *testing.B) {
	s := NewServer(newEchoHandler())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := NewTCPTransport()
	defer tr.Close()
	req := benchPayloadRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Call(addr, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTripGob is the gob lockstep baseline on the same
// payload.
func BenchmarkRPCRoundTripGob(b *testing.B) {
	addr, cleanup := startGobServer(b, newEchoHandler())
	defer cleanup()
	c, err := dialGobBaseline(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.conn.Close()
	req := benchPayloadRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.call(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCPipelined measures aggregate throughput with many
// callers sharing one multiplexed connection.
func BenchmarkRPCPipelined(b *testing.B) {
	s := NewServer(newEchoHandler())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tr := NewTCPTransport()
	defer tr.Close()
	req := benchPayloadRequest()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := tr.Call(addr, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
