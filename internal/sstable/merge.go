package sstable

import (
	"bytes"
	"container/heap"

	"scads/internal/record"
)

// MergeOptions configure a compaction.
type MergeOptions struct {
	// DropTombstones removes deletion markers from the output. Only
	// safe for a full (major) compaction where no older table could
	// still hold a value the tombstone shadows.
	DropTombstones bool
	// Drop, when set, excludes a source record from the merge entirely
	// (before conflict resolution, as if the source table never held
	// it). src is the index into the sources slice. The storage engine
	// uses this to resolve pending range truncations at compaction
	// time.
	Drop func(src int, rec record.Record) bool
}

// Merge compacts the given tables into a single new table at outPath.
// When the same key appears in multiple inputs, the record from the
// lower-numbered (newer) source wins ties after last-write-wins
// version comparison. Inputs must each be internally sorted; sources
// are ordered newest first, matching the storage engine's table stack.
func Merge(outPath string, opts MergeOptions, sources ...*Reader) (*Reader, error) {
	w, err := NewWriter(outPath)
	if err != nil {
		return nil, err
	}

	h := &mergeHeap{}
	iters := make([]*tableIter, len(sources))
	for i, src := range sources {
		it := newTableIter(src)
		iters[i] = it
		if it.next() {
			heap.Push(h, mergeItem{rec: it.rec, src: i, it: it})
		} else if it.err != nil {
			w.Abort()
			return nil, it.err
		}
	}

	var pendingValid bool
	var pending record.Record
	var pendingSrc int

	emit := func(rec record.Record, src int) error {
		if !pendingValid {
			pending, pendingSrc, pendingValid = rec, src, true
			return nil
		}
		if bytes.Equal(rec.Key, pending.Key) {
			// Same key from another table: resolve.
			if rec.Supersedes(pending) || (!pending.Supersedes(rec) && src < pendingSrc) {
				pending, pendingSrc = rec, src
			}
			return nil
		}
		if err := flushPending(w, pending, opts); err != nil {
			return err
		}
		pending, pendingSrc = rec, src
		return nil
	}

	for h.Len() > 0 {
		item := heap.Pop(h).(mergeItem)
		if opts.Drop != nil && opts.Drop(item.src, item.rec) {
			// Excluded from this source: advance its iterator without
			// letting the record contend.
			if item.it.next() {
				heap.Push(h, mergeItem{rec: item.it.rec, src: item.src, it: item.it})
			} else if item.it.err != nil {
				w.Abort()
				return nil, item.it.err
			}
			continue
		}
		if err := emit(item.rec, item.src); err != nil {
			w.Abort()
			return nil, err
		}
		if item.it.next() {
			heap.Push(h, mergeItem{rec: item.it.rec, src: item.src, it: item.it})
		} else if item.it.err != nil {
			w.Abort()
			return nil, item.it.err
		}
	}
	if pendingValid {
		if err := flushPending(w, pending, opts); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return Open(outPath)
}

func flushPending(w *Writer, rec record.Record, opts MergeOptions) error {
	if opts.DropTombstones && rec.Tombstone {
		return nil
	}
	return w.Add(rec)
}

// tableIter pulls records from a Reader one at a time by running the
// scan in a goroutine and handing records over a channel. Tables are
// immutable so this is race-free.
type tableIter struct {
	ch  chan record.Record
	ech chan error
	rec record.Record
	err error
}

func newTableIter(r *Reader) *tableIter {
	it := &tableIter{ch: make(chan record.Record, 64), ech: make(chan error, 1)}
	go func() {
		err := r.Scan(nil, nil, func(rec record.Record) bool {
			it.ch <- rec
			return true
		})
		close(it.ch)
		it.ech <- err
	}()
	return it
}

func (it *tableIter) next() bool {
	rec, ok := <-it.ch
	if !ok {
		if err := <-it.ech; err != nil {
			it.err = err
		}
		return false
	}
	it.rec = rec
	return true
}

type mergeItem struct {
	rec record.Record
	src int
	it  *tableIter
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].rec.Key, h[j].rec.Key)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
