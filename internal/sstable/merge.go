package sstable

import (
	"bytes"
	"container/heap"
	"errors"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

// ErrMergeCanceled is returned by Merge when MergeOptions.Cancel
// reported cancellation; the partially written output is removed.
var ErrMergeCanceled = errors.New("sstable: merge canceled")

// MergeOptions configure a compaction.
type MergeOptions struct {
	// DropTombstones removes deletion markers from the output. Only
	// safe for a full (major) compaction where no older table could
	// still hold a value the tombstone shadows.
	DropTombstones bool
	// Drop, when set, excludes a source record from the merge entirely
	// (before conflict resolution, as if the source table never held
	// it). src is the index into the sources slice. The storage engine
	// uses this to resolve pending range truncations at compaction
	// time.
	Drop func(src int, rec record.Record) bool
	// RateLimitBytesPerSec throttles the merge's input byte rate so a
	// background compaction cannot monopolise the disk while
	// latency-sensitive work (a migration fence handoff, foreground
	// reads) is in flight. 0 means unlimited.
	RateLimitBytesPerSec int64
	// Clock paces the rate limiter; nil selects the real clock. Tests
	// inject a virtual clock to assert pacing deterministically.
	Clock clock.Clock
	// Cancel, when set, is polled between records; once it returns
	// true the merge aborts with ErrMergeCanceled. The storage engine
	// cancels background tier merges when a major compaction or
	// teardown needs the table set to itself.
	Cancel func() bool
}

// Merge compacts the given tables into a single new table at outPath.
// When the same key appears in multiple inputs, the record from the
// lower-numbered (newer) source wins ties after last-write-wins
// version comparison. Inputs must each be internally sorted; sources
// are ordered newest first, matching the storage engine's table stack.
func Merge(outPath string, opts MergeOptions, sources ...*Reader) (*Reader, error) {
	w, err := NewWriter(outPath)
	if err != nil {
		return nil, err
	}
	limiter := newRateLimiter(opts.RateLimitBytesPerSec, opts.Clock)

	h := &mergeHeap{}
	iters := make([]*tableIter, len(sources))
	for i, src := range sources {
		it := &tableIter{r: src}
		iters[i] = it
		if it.next() {
			heap.Push(h, mergeItem{rec: it.rec, src: i, it: it})
		} else if it.err != nil {
			w.Abort()
			return nil, it.err
		}
	}

	var pendingValid bool
	var pending record.Record
	var pendingSrc int

	emit := func(rec record.Record, src int) error {
		if !pendingValid {
			pending, pendingSrc, pendingValid = rec, src, true
			return nil
		}
		if bytes.Equal(rec.Key, pending.Key) {
			// Same key from another table: resolve.
			if rec.Supersedes(pending) || (!pending.Supersedes(rec) && src < pendingSrc) {
				pending, pendingSrc = rec, src
			}
			return nil
		}
		if err := flushPending(w, pending, opts); err != nil {
			return err
		}
		pending, pendingSrc = rec, src
		return nil
	}

	for h.Len() > 0 {
		if opts.Cancel != nil && opts.Cancel() {
			w.Abort()
			return nil, ErrMergeCanceled
		}
		item := heap.Pop(h).(mergeItem)
		limiter.wait(item.rec.EncodedSize(), opts.Cancel)
		if opts.Drop != nil && opts.Drop(item.src, item.rec) {
			// Excluded from this source: advance its iterator without
			// letting the record contend.
			if item.it.next() {
				heap.Push(h, mergeItem{rec: item.it.rec, src: item.src, it: item.it})
			} else if item.it.err != nil {
				w.Abort()
				return nil, item.it.err
			}
			continue
		}
		if err := emit(item.rec, item.src); err != nil {
			w.Abort()
			return nil, err
		}
		if item.it.next() {
			heap.Push(h, mergeItem{rec: item.it.rec, src: item.src, it: item.it})
		} else if item.it.err != nil {
			w.Abort()
			return nil, item.it.err
		}
	}
	if pendingValid {
		if err := flushPending(w, pending, opts); err != nil {
			w.Abort()
			return nil, err
		}
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return Open(outPath)
}

func flushPending(w *Writer, rec record.Record, opts MergeOptions) error {
	if opts.DropTombstones && rec.Tombstone {
		return nil
	}
	return w.Add(rec)
}

// rateLimiter paces a merge to a target byte rate by sleeping whenever
// consumed bytes run ahead of elapsed time. Sleeps are chopped into
// small slices so a cancellation is noticed within ~5ms even while the
// limiter is the bottleneck.
type rateLimiter struct {
	rate  int64
	clk   clock.Clock
	start time.Time
	bytes int64
}

func newRateLimiter(rate int64, clk clock.Clock) *rateLimiter {
	rl := &rateLimiter{rate: rate, clk: clk}
	if rate > 0 {
		if rl.clk == nil {
			rl.clk = clock.NewReal()
		}
		rl.start = rl.clk.Now()
	}
	return rl
}

const rateLimitSliceMax = 5 * time.Millisecond

func (rl *rateLimiter) wait(n int, cancel func() bool) {
	if rl.rate <= 0 {
		return
	}
	rl.bytes += int64(n)
	for {
		elapsed := rl.clk.Since(rl.start)
		expected := time.Duration(float64(rl.bytes) / float64(rl.rate) * float64(time.Second))
		if expected <= elapsed+time.Millisecond {
			return
		}
		d := expected - elapsed
		if d > rateLimitSliceMax {
			d = rateLimitSliceMax
		}
		rl.clk.Sleep(d)
		if cancel != nil && cancel() {
			return // the caller's next poll aborts the merge
		}
	}
}

// tableIter pulls records from a Reader one block at a time. Block
// reads bypass the cache: a compaction is a one-shot sequential sweep
// and must not wash hot read blocks out of the shared cache.
type tableIter struct {
	r     *Reader
	block int
	recs  []record.Record
	pos   int
	rec   record.Record
	err   error
}

func (it *tableIter) next() bool {
	for {
		if it.pos < len(it.recs) {
			it.rec = it.recs[it.pos]
			it.pos++
			return true
		}
		if it.block >= it.r.NumBlocks() {
			return false
		}
		recs, err := it.r.readBlockUncached(it.block)
		if err != nil {
			it.err = err
			return false
		}
		it.block++
		it.recs, it.pos = recs, 0
	}
}

type mergeItem struct {
	rec record.Record
	src int
	it  *tableIter
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].rec.Key, h[j].rec.Key)
	if c != 0 {
		return c < 0
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
