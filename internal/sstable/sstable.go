// Package sstable implements immutable sorted table files, the on-disk
// format of the SCADS storage engine. A table holds records in strictly
// ascending key order with a sparse index (one entry per index
// interval) and a bloom filter for fast negative lookups.
//
// File layout:
//
//	data:   framed records (see internal/record), ascending keys
//	index:  uvarint count, then per entry: uvarint keyLen | key |
//	        uvarint offset
//	bloom:  uvarint bit count | uvarint hash count | bits
//	footer: dataLen u64 | indexLen u64 | bloomLen u64 | count u64 |
//	        magic u64
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"scads/internal/record"
)

const (
	magic         = 0x5343414453535431 // "SCADSST1"
	footerSize    = 5 * 8
	indexInterval = 16
	bloomBitsPer  = 10 // bits per key ≈ 1% false positives
	bloomHashes   = 7
)

// ErrCorrupt is returned when a table fails validation.
var ErrCorrupt = errors.New("sstable: corrupt table")

// ErrOutOfOrder is returned when Writer.Add receives a non-increasing key.
var ErrOutOfOrder = errors.New("sstable: keys must be strictly ascending")

// Writer builds a table file record by record.
type Writer struct {
	f       *os.File
	buf     []byte
	lastKey []byte
	index   []indexEntry
	keys    [][]byte // retained for bloom construction
	count   uint64
	offset  uint64
	done    bool
}

type indexEntry struct {
	key    []byte
	offset uint64
}

// NewWriter creates the table file at path (truncating any existing
// file).
func NewWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	return &Writer{f: f}, nil
}

// Add appends rec. Keys must arrive in strictly ascending order.
func (w *Writer) Add(rec record.Record) error {
	if w.done {
		return errors.New("sstable: writer already finished")
	}
	if w.lastKey != nil && bytes.Compare(rec.Key, w.lastKey) <= 0 {
		return fmt.Errorf("%w: %q after %q", ErrOutOfOrder, rec.Key, w.lastKey)
	}
	if w.count%indexInterval == 0 {
		w.index = append(w.index, indexEntry{key: append([]byte(nil), rec.Key...), offset: w.offset})
	}
	w.keys = append(w.keys, append([]byte(nil), rec.Key...))
	w.buf = rec.AppendBinary(w.buf[:0])
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("sstable: write: %w", err)
	}
	w.offset += uint64(len(w.buf))
	w.lastKey = append(w.lastKey[:0], rec.Key...)
	w.count++
	return nil
}

// Finish writes the index, bloom filter and footer, syncs, and closes
// the file.
func (w *Writer) Finish() error {
	if w.done {
		return errors.New("sstable: writer already finished")
	}
	w.done = true
	defer w.f.Close()

	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, e := range w.index {
		idx = binary.AppendUvarint(idx, uint64(len(e.key)))
		idx = append(idx, e.key...)
		idx = binary.AppendUvarint(idx, e.offset)
	}
	if _, err := w.f.Write(idx); err != nil {
		return err
	}

	bloom := buildBloom(w.keys)
	bl := bloom.marshal()
	if _, err := w.f.Write(bl); err != nil {
		return err
	}

	var footer [footerSize]byte
	binary.BigEndian.PutUint64(footer[0:8], w.offset)
	binary.BigEndian.PutUint64(footer[8:16], uint64(len(idx)))
	binary.BigEndian.PutUint64(footer[16:24], uint64(len(bl)))
	binary.BigEndian.PutUint64(footer[24:32], w.count)
	binary.BigEndian.PutUint64(footer[32:40], magic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// Abort closes and removes a partially written table.
func (w *Writer) Abort() error {
	w.done = true
	name := w.f.Name()
	w.f.Close()
	return os.Remove(name)
}

// Reader provides random and sequential access to a finished table.
type Reader struct {
	f       *os.File
	path    string
	dataLen uint64
	count   uint64
	index   []indexEntry
	bloom   *bloomFilter
	first   []byte
	last    []byte
}

// Open validates and opens the table at path, loading its index and
// bloom filter into memory.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, fmt.Errorf("sstable: file too small: %w", ErrCorrupt)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint64(footer[32:40]) != magic {
		f.Close()
		return nil, fmt.Errorf("sstable: bad magic: %w", ErrCorrupt)
	}
	r := &Reader{
		f:       f,
		path:    path,
		dataLen: binary.BigEndian.Uint64(footer[0:8]),
		count:   binary.BigEndian.Uint64(footer[24:32]),
	}
	idxLen := binary.BigEndian.Uint64(footer[8:16])
	blLen := binary.BigEndian.Uint64(footer[16:24])
	if r.dataLen+idxLen+blLen+footerSize != uint64(st.Size()) {
		f.Close()
		return nil, fmt.Errorf("sstable: section lengths disagree with file size: %w", ErrCorrupt)
	}

	idxBuf := make([]byte, idxLen)
	if _, err := f.ReadAt(idxBuf, int64(r.dataLen)); err != nil {
		f.Close()
		return nil, err
	}
	if err := r.parseIndex(idxBuf); err != nil {
		f.Close()
		return nil, err
	}

	blBuf := make([]byte, blLen)
	if _, err := f.ReadAt(blBuf, int64(r.dataLen+idxLen)); err != nil {
		f.Close()
		return nil, err
	}
	bloom, err := unmarshalBloom(blBuf)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.bloom = bloom

	if err := r.loadBounds(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseIndex(buf []byte) error {
	n, m := binary.Uvarint(buf)
	if m <= 0 {
		return ErrCorrupt
	}
	buf = buf[m:]
	r.index = make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, m := binary.Uvarint(buf)
		if m <= 0 || uint64(len(buf)-m) < klen {
			return ErrCorrupt
		}
		buf = buf[m:]
		key := append([]byte(nil), buf[:klen]...)
		buf = buf[klen:]
		off, m := binary.Uvarint(buf)
		if m <= 0 {
			return ErrCorrupt
		}
		buf = buf[m:]
		r.index = append(r.index, indexEntry{key: key, offset: off})
	}
	return nil
}

func (r *Reader) loadBounds() error {
	if r.count == 0 {
		return nil
	}
	first := true
	err := r.scanFrom(0, func(rec record.Record) bool {
		if first {
			r.first = rec.Key
			first = false
		}
		return false
	})
	if err != nil {
		return err
	}
	// Last key: scan the final index block.
	lastOff := r.index[len(r.index)-1].offset
	return r.scanFrom(lastOff, func(rec record.Record) bool {
		r.last = rec.Key
		return true
	})
}

// Count returns the number of records in the table.
func (r *Reader) Count() uint64 { return r.count }

// Path returns the file path of the table.
func (r *Reader) Path() string { return r.path }

// Bounds returns the smallest and largest keys in the table.
func (r *Reader) Bounds() (first, last []byte) { return r.first, r.last }

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// Remove closes and deletes the table file.
func (r *Reader) Remove() error {
	r.f.Close()
	return os.Remove(r.path)
}

// Get returns the record stored under key.
func (r *Reader) Get(key []byte) (record.Record, bool, error) {
	if r.count == 0 || !r.bloom.mayContain(key) {
		return record.Record{}, false, nil
	}
	start := r.seekOffset(key)
	var found record.Record
	ok := false
	err := r.scanFrom(start, func(rec record.Record) bool {
		c := bytes.Compare(rec.Key, key)
		if c == 0 {
			found, ok = rec, true
			return false
		}
		return c < 0
	})
	return found, ok, err
}

// Scan visits records with start <= key < end in ascending order until
// fn returns false. A nil end means unbounded.
func (r *Reader) Scan(start, end []byte, fn func(record.Record) bool) error {
	if r.count == 0 {
		return nil
	}
	off := uint64(0)
	if start != nil {
		off = r.seekOffset(start)
	}
	return r.scanFrom(off, func(rec record.Record) bool {
		if start != nil && bytes.Compare(rec.Key, start) < 0 {
			return true
		}
		if end != nil && bytes.Compare(rec.Key, end) >= 0 {
			return false
		}
		return fn(rec)
	})
}

// seekOffset returns the data offset of the last index block whose
// first key is <= key.
func (r *Reader) seekOffset(key []byte) uint64 {
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.index[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return r.index[lo-1].offset
}

func (r *Reader) scanFrom(offset uint64, fn func(record.Record) bool) error {
	const chunk = 64 << 10
	buf := make([]byte, 0, chunk)
	pos := offset
	for pos < r.dataLen {
		// Refill buffer.
		want := r.dataLen - pos
		if want > chunk {
			want = chunk
		}
		need := int(want) - len(buf)
		if need > 0 {
			old := len(buf)
			buf = append(buf, make([]byte, need)...)
			if _, err := r.f.ReadAt(buf[old:], int64(pos)+int64(old)); err != nil && err != io.EOF {
				return err
			}
		}
		rec, rest, err := record.DecodeBinary(buf)
		if err != nil {
			if errors.Is(err, record.ErrCorrupt) && uint64(len(buf)) < r.dataLen-pos {
				// Frame spans the chunk boundary: grow the buffer.
				grow := r.dataLen - pos
				if grow > uint64(cap(buf))*2 {
					grow = uint64(cap(buf)) * 2
				}
				old := len(buf)
				buf = append(buf, make([]byte, int(grow)-old)...)
				if _, err := r.f.ReadAt(buf[old:], int64(pos)+int64(old)); err != nil && err != io.EOF {
					return err
				}
				continue
			}
			return fmt.Errorf("sstable: %w", err)
		}
		consumed := len(buf) - len(rest)
		pos += uint64(consumed)
		buf = buf[:copy(buf, rest)]
		if !fn(rec) {
			return nil
		}
	}
	return nil
}

// --- bloom filter ---

type bloomFilter struct {
	bits   []byte
	nBits  uint64
	hashes uint64
}

func buildBloom(keys [][]byte) *bloomFilter {
	nBits := uint64(len(keys)*bloomBitsPer + 64)
	bf := &bloomFilter{
		bits:   make([]byte, (nBits+7)/8),
		nBits:  nBits,
		hashes: bloomHashes,
	}
	for _, k := range keys {
		h1, h2 := bloomHash(k)
		for i := uint64(0); i < bf.hashes; i++ {
			bit := (h1 + i*h2) % bf.nBits
			bf.bits[bit/8] |= 1 << (bit % 8)
		}
	}
	return bf
}

func (bf *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bf.hashes; i++ {
		bit := (h1 + i*h2) % bf.nBits
		if bf.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h.Write([]byte{0x9e})
	h2 := h.Sum64() | 1
	return h1, h2
}

func (bf *bloomFilter) marshal() []byte {
	var out []byte
	out = binary.AppendUvarint(out, bf.nBits)
	out = binary.AppendUvarint(out, bf.hashes)
	return append(out, bf.bits...)
}

func unmarshalBloom(b []byte) (*bloomFilter, error) {
	nBits, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, ErrCorrupt
	}
	b = b[m:]
	hashes, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, ErrCorrupt
	}
	b = b[m:]
	if uint64(len(b)) != (nBits+7)/8 || hashes == 0 {
		return nil, ErrCorrupt
	}
	return &bloomFilter{bits: append([]byte(nil), b...), nBits: nBits, hashes: hashes}, nil
}
