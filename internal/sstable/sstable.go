// Package sstable implements immutable sorted table files, the on-disk
// format of the SCADS storage engine. A table holds records in strictly
// ascending key order, carved into ~4 KiB blocks with a per-block
// sparse index and a table-level bloom filter for fast negative
// lookups. Reads are block-granular: a point get touches exactly one
// block, and blocks can be served from a shared decoded-block cache
// (see BlockCache) so repeated reads skip both the disk and the decode.
//
// File layout:
//
//	data:   framed records (see internal/record), ascending keys,
//	        grouped into blocks of ~blockTargetBytes
//	index:  uvarint count, then per block: uvarint keyLen | first key |
//	        uvarint offset
//	bloom:  uvarint bit count | uvarint hash count | bits
//	footer: dataLen u64 | indexLen u64 | bloomLen u64 | count u64 |
//	        magic u64
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync/atomic"

	"scads/internal/record"
)

const (
	magic      = 0x5343414453535431 // "SCADSST1"
	footerSize = 5 * 8
	// blockTargetBytes closes a data block once it reaches this size.
	// 4 KiB matches the I/O granularity of the underlying device: a
	// point read costs one aligned-ish pread instead of a 64 KiB chunk.
	blockTargetBytes = 4 << 10
	bloomBitsPer     = 10 // bits per key ≈ 1% false positives
	bloomHashes      = 7
)

// ErrCorrupt is returned when a table fails validation.
var ErrCorrupt = errors.New("sstable: corrupt table")

// ErrOutOfOrder is returned when Writer.Add receives a non-increasing key.
var ErrOutOfOrder = errors.New("sstable: keys must be strictly ascending")

// BlockCache caches decoded data blocks across tables. Implementations
// must be safe for concurrent use; cached record slices are shared and
// must be treated as immutable by all parties. The storage engine
// provides a sharded LRU implementation shared across namespaces.
type BlockCache interface {
	// Get returns the cached decoded block, if present.
	Get(path string, block int) ([]record.Record, bool)
	// Put stores a decoded block. sizeBytes is the caller's estimate of
	// the block's memory footprint (raw bytes plus record headers).
	Put(path string, block int, recs []record.Record, sizeBytes int)
	// DropTable evicts every block of the named table, called when the
	// table file is removed after compaction.
	DropTable(path string)
}

// Writer builds a table file record by record.
type Writer struct {
	f          *os.File
	buf        []byte
	lastKey    []byte
	index      []indexEntry
	bloomSeeds []bloomSeed // two FNV hashes per key, accumulated incrementally
	blockBytes uint64      // bytes written into the current block
	count      uint64
	offset     uint64
	done       bool
}

type indexEntry struct {
	key    []byte
	offset uint64
}

// bloomSeed holds the double-hash pair for one key, so bloom
// construction never needs the key bytes again: 16 bytes per key
// instead of retaining every key in memory until Finish.
type bloomSeed struct {
	h1, h2 uint64
}

// NewWriter creates the table file at path (truncating any existing
// file).
func NewWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sstable: create: %w", err)
	}
	return &Writer{f: f}, nil
}

// Add appends rec. Keys must arrive in strictly ascending order.
func (w *Writer) Add(rec record.Record) error {
	if w.done {
		return errors.New("sstable: writer already finished")
	}
	if w.lastKey != nil && bytes.Compare(rec.Key, w.lastKey) <= 0 {
		return fmt.Errorf("%w: %q after %q", ErrOutOfOrder, rec.Key, w.lastKey)
	}
	if w.count == 0 || w.blockBytes >= blockTargetBytes {
		// Start a new block at this record.
		w.index = append(w.index, indexEntry{key: append([]byte(nil), rec.Key...), offset: w.offset})
		w.blockBytes = 0
	}
	h1, h2 := bloomHash(rec.Key)
	w.bloomSeeds = append(w.bloomSeeds, bloomSeed{h1, h2})
	w.buf = rec.AppendBinary(w.buf[:0])
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("sstable: write: %w", err)
	}
	w.offset += uint64(len(w.buf))
	w.blockBytes += uint64(len(w.buf))
	w.lastKey = append(w.lastKey[:0], rec.Key...)
	w.count++
	return nil
}

// Finish writes the index, bloom filter and footer, syncs, and closes
// the file.
func (w *Writer) Finish() error {
	if w.done {
		return errors.New("sstable: writer already finished")
	}
	w.done = true
	defer w.f.Close()

	var idx []byte
	idx = binary.AppendUvarint(idx, uint64(len(w.index)))
	for _, e := range w.index {
		idx = binary.AppendUvarint(idx, uint64(len(e.key)))
		idx = append(idx, e.key...)
		idx = binary.AppendUvarint(idx, e.offset)
	}
	if _, err := w.f.Write(idx); err != nil {
		return err
	}

	bloom := buildBloom(w.bloomSeeds)
	bl := bloom.marshal()
	if _, err := w.f.Write(bl); err != nil {
		return err
	}

	var footer [footerSize]byte
	binary.BigEndian.PutUint64(footer[0:8], w.offset)
	binary.BigEndian.PutUint64(footer[8:16], uint64(len(idx)))
	binary.BigEndian.PutUint64(footer[16:24], uint64(len(bl)))
	binary.BigEndian.PutUint64(footer[24:32], w.count)
	binary.BigEndian.PutUint64(footer[32:40], magic)
	if _, err := w.f.Write(footer[:]); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return nil
}

// Abort closes and removes a partially written table.
func (w *Writer) Abort() error {
	w.done = true
	name := w.f.Name()
	w.f.Close()
	return os.Remove(name)
}

// Reader provides random and sequential access to a finished table.
//
// Readers are reference counted: the owner's reference is released by
// Close or Remove, and concurrent scans that outlive the owner's table
// set pin the file with Retain/Release, so a compaction can unlink a
// table while a scan started earlier still streams its blocks.
type Reader struct {
	f       *os.File
	path    string
	dataLen uint64
	size    int64 // whole file size, for tier selection
	count   uint64
	index   []indexEntry // one entry per block: first key + offset
	bloom   *bloomFilter
	first   []byte
	last    []byte

	cache BlockCache // nil = uncached; set once before concurrent use

	refs   atomic.Int32
	doomed atomic.Bool // unlink the file when the last reference drops
}

// Open validates and opens the table at path, loading its index and
// bloom filter into memory.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sstable: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < footerSize {
		f.Close()
		return nil, fmt.Errorf("sstable: file too small: %w", ErrCorrupt)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerSize); err != nil {
		f.Close()
		return nil, err
	}
	if binary.BigEndian.Uint64(footer[32:40]) != magic {
		f.Close()
		return nil, fmt.Errorf("sstable: bad magic: %w", ErrCorrupt)
	}
	r := &Reader{
		f:       f,
		path:    path,
		dataLen: binary.BigEndian.Uint64(footer[0:8]),
		size:    st.Size(),
		count:   binary.BigEndian.Uint64(footer[24:32]),
	}
	r.refs.Store(1)
	idxLen := binary.BigEndian.Uint64(footer[8:16])
	blLen := binary.BigEndian.Uint64(footer[16:24])
	if r.dataLen+idxLen+blLen+footerSize != uint64(st.Size()) {
		f.Close()
		return nil, fmt.Errorf("sstable: section lengths disagree with file size: %w", ErrCorrupt)
	}

	idxBuf := make([]byte, idxLen)
	if _, err := f.ReadAt(idxBuf, int64(r.dataLen)); err != nil {
		f.Close()
		return nil, err
	}
	if err := r.parseIndex(idxBuf); err != nil {
		f.Close()
		return nil, err
	}

	blBuf := make([]byte, blLen)
	if _, err := f.ReadAt(blBuf, int64(r.dataLen+idxLen)); err != nil {
		f.Close()
		return nil, err
	}
	bloom, err := unmarshalBloom(blBuf)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.bloom = bloom

	if err := r.loadBounds(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// SetBlockCache attaches a shared decoded-block cache. Must be called
// before the reader is used concurrently (the storage engine does so
// immediately after Open).
func (r *Reader) SetBlockCache(c BlockCache) { r.cache = c }

func (r *Reader) parseIndex(buf []byte) error {
	n, m := binary.Uvarint(buf)
	if m <= 0 {
		return ErrCorrupt
	}
	buf = buf[m:]
	r.index = make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		klen, m := binary.Uvarint(buf)
		if m <= 0 || uint64(len(buf)-m) < klen {
			return ErrCorrupt
		}
		buf = buf[m:]
		key := append([]byte(nil), buf[:klen]...)
		buf = buf[klen:]
		off, m := binary.Uvarint(buf)
		if m <= 0 {
			return ErrCorrupt
		}
		buf = buf[m:]
		r.index = append(r.index, indexEntry{key: key, offset: off})
	}
	return nil
}

func (r *Reader) loadBounds() error {
	if r.count == 0 {
		return nil
	}
	firstBlock, err := r.readBlockUncached(0)
	if err != nil {
		return err
	}
	if len(firstBlock) == 0 {
		return ErrCorrupt
	}
	lastBlock := firstBlock
	if n := r.NumBlocks(); n > 1 {
		if lastBlock, err = r.readBlockUncached(n - 1); err != nil {
			return err
		}
		if len(lastBlock) == 0 {
			return ErrCorrupt
		}
	}
	// Clone both bounds: the decoded records alias the block's read
	// buffer, and retaining two keys must not pin whole blocks (or
	// trust their buffers' lifetimes) for the lifetime of the reader.
	r.first = append([]byte(nil), firstBlock[0].Key...)
	r.last = append([]byte(nil), lastBlock[len(lastBlock)-1].Key...)
	return nil
}

// Count returns the number of records in the table.
func (r *Reader) Count() uint64 { return r.count }

// Path returns the file path of the table.
func (r *Reader) Path() string { return r.path }

// SizeBytes returns the table's file size, used by the storage
// engine's tier-selection policy.
func (r *Reader) SizeBytes() int64 { return r.size }

// NumBlocks returns the number of data blocks in the table.
func (r *Reader) NumBlocks() int { return len(r.index) }

// Bounds returns the smallest and largest keys in the table.
func (r *Reader) Bounds() (first, last []byte) { return r.first, r.last }

// Retain pins the reader: the underlying file stays open (and, after
// Remove, on disk) until a matching Release.
func (r *Reader) Retain() { r.refs.Add(1) }

// Release drops one reference, closing — and, if Remove was called,
// unlinking — the file when the last one goes.
func (r *Reader) Release() error {
	if r.refs.Add(-1) != 0 {
		return nil
	}
	err := r.f.Close()
	if r.doomed.Load() {
		if c := r.cache; c != nil {
			c.DropTable(r.path)
		}
		if rerr := os.Remove(r.path); rerr != nil && err == nil {
			err = rerr
		}
	}
	return err
}

// Close releases the owner's reference; the file closes once every
// concurrent Retain has been Released.
func (r *Reader) Close() error { return r.Release() }

// Remove releases the owner's reference and marks the table file for
// deletion; the unlink happens when the last reference drops, so
// in-flight scans that pinned the reader finish against intact data.
func (r *Reader) Remove() error {
	r.doomed.Store(true)
	return r.Release()
}

// blockExtent returns the byte range [off, off+length) of block i.
func (r *Reader) blockExtent(i int) (off, length uint64) {
	off = r.index[i].offset
	end := r.dataLen
	if i+1 < len(r.index) {
		end = r.index[i+1].offset
	}
	return off, end - off
}

// ReadBlock returns the decoded records of block i, consulting the
// attached block cache first. The returned slice and the records'
// Key/Value bytes are shared and immutable.
func (r *Reader) ReadBlock(i int) ([]record.Record, error) {
	if c := r.cache; c != nil {
		if recs, ok := c.Get(r.path, i); ok {
			return recs, nil
		}
	}
	off, length := r.blockExtent(i)
	recs, err := r.decodeBlock(off, length)
	if err != nil {
		return nil, err
	}
	if c := r.cache; c != nil {
		c.Put(r.path, i, recs, int(length)+len(recs)*recordOverhead)
	}
	return recs, nil
}

// recordOverhead approximates the in-memory record.Record header cost
// charged to the block cache on top of the raw block bytes.
const recordOverhead = 56

// readBlockUncached decodes block i without touching the cache: the
// path compaction and bounds loading use, so one-shot sequential sweeps
// never wash the cache of hot read blocks.
func (r *Reader) readBlockUncached(i int) ([]record.Record, error) {
	off, length := r.blockExtent(i)
	return r.decodeBlock(off, length)
}

func (r *Reader) decodeBlock(off, length uint64) ([]record.Record, error) {
	buf := make([]byte, length)
	if _, err := r.f.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("sstable: read block: %w", err)
	}
	recs := make([]record.Record, 0, length/48+1)
	rest := buf
	for len(rest) > 0 {
		rec, rem, err := record.DecodeBinaryAlias(rest)
		if err != nil {
			return nil, fmt.Errorf("sstable: %w", err)
		}
		recs = append(recs, rec)
		rest = rem
	}
	return recs, nil
}

// blockFor returns the index of the block that may contain key: the
// last block whose first key is <= key (block 0 if key precedes every
// block's first key).
func (r *Reader) blockFor(key []byte) int {
	lo, hi := 0, len(r.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(r.index[mid].key, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Get returns the record stored under key. One bloom probe, one block
// read (cached or a single ~4 KiB pread), one binary search.
func (r *Reader) Get(key []byte) (record.Record, bool, error) {
	if r.count == 0 || !r.bloom.mayContain(key) {
		return record.Record{}, false, nil
	}
	recs, err := r.ReadBlock(r.blockFor(key))
	if err != nil {
		return record.Record{}, false, err
	}
	i := sort.Search(len(recs), func(i int) bool {
		return bytes.Compare(recs[i].Key, key) >= 0
	})
	if i < len(recs) && bytes.Equal(recs[i].Key, key) {
		return recs[i], true, nil
	}
	return record.Record{}, false, nil
}

// Scan visits records with start <= key < end in ascending order until
// fn returns false. A nil end means unbounded.
func (r *Reader) Scan(start, end []byte, fn func(record.Record) bool) error {
	if r.count == 0 {
		return nil
	}
	b := 0
	if start != nil {
		b = r.blockFor(start)
	}
	for ; b < len(r.index); b++ {
		recs, err := r.ReadBlock(b)
		if err != nil {
			return err
		}
		i := 0
		if start != nil {
			i = sort.Search(len(recs), func(i int) bool {
				return bytes.Compare(recs[i].Key, start) >= 0
			})
		}
		for ; i < len(recs); i++ {
			if end != nil && bytes.Compare(recs[i].Key, end) >= 0 {
				return nil
			}
			if !fn(recs[i]) {
				return nil
			}
		}
		start = nil // later blocks start past the lower bound
	}
	return nil
}

// --- bloom filter ---

type bloomFilter struct {
	bits   []byte
	nBits  uint64
	hashes uint64
}

func buildBloom(seeds []bloomSeed) *bloomFilter {
	nBits := uint64(len(seeds)*bloomBitsPer + 64)
	bf := &bloomFilter{
		bits:   make([]byte, (nBits+7)/8),
		nBits:  nBits,
		hashes: bloomHashes,
	}
	for _, s := range seeds {
		for i := uint64(0); i < bf.hashes; i++ {
			bit := (s.h1 + i*s.h2) % bf.nBits
			bf.bits[bit/8] |= 1 << (bit % 8)
		}
	}
	return bf
}

func (bf *bloomFilter) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bf.hashes; i++ {
		bit := (h1 + i*h2) % bf.nBits
		if bf.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h.Write([]byte{0x9e})
	h2 := h.Sum64() | 1
	return h1, h2
}

func (bf *bloomFilter) marshal() []byte {
	var out []byte
	out = binary.AppendUvarint(out, bf.nBits)
	out = binary.AppendUvarint(out, bf.hashes)
	return append(out, bf.bits...)
}

func unmarshalBloom(b []byte) (*bloomFilter, error) {
	nBits, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, ErrCorrupt
	}
	b = b[m:]
	hashes, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, ErrCorrupt
	}
	b = b[m:]
	if uint64(len(b)) != (nBits+7)/8 || hashes == 0 {
		return nil, ErrCorrupt
	}
	return &bloomFilter{bits: append([]byte(nil), b...), nBits: nBits, hashes: hashes}, nil
}
