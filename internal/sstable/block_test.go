package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/record"
)

// countingCache is a minimal BlockCache for exercising the cached read
// path: an unbounded map plus hit/put/drop counters.
type countingCache struct {
	mu      sync.Mutex
	blocks  map[string][]record.Record
	hits    int
	puts    int
	dropped []string
}

func newCountingCache() *countingCache {
	return &countingCache{blocks: map[string][]record.Record{}}
}

func (c *countingCache) key(path string, block int) string {
	return fmt.Sprintf("%s#%d", path, block)
}

func (c *countingCache) Get(path string, block int) ([]record.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs, ok := c.blocks[c.key(path, block)]
	if ok {
		c.hits++
	}
	return recs, ok
}

func (c *countingCache) Put(path string, block int, recs []record.Record, sizeBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.blocks[c.key(path, block)] = recs
}

func (c *countingCache) DropTable(path string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropped = append(c.dropped, path)
	for k := range c.blocks {
		if len(k) > len(path) && k[:len(path)] == path && k[len(path)] == '#' {
			delete(c.blocks, k)
		}
	}
}

// Regression test: Bounds must survive arbitrary later block reads. The
// bounds used to be captured from a scan whose scratch buffer was
// reused, so reading the last block again corrupted the retained keys.
func TestBoundsSurviveFullScan(t *testing.T) {
	recs := seqRecords(2000) // well past one block
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), recs)
	defer r.Close()
	if r.NumBlocks() < 2 {
		t.Fatalf("want a multi-block table, got %d blocks", r.NumBlocks())
	}
	first, last := r.Bounds()
	wantFirst, wantLast := string(first), string(last)
	if wantFirst != "key-000000" || wantLast != "key-001999" {
		t.Fatalf("initial Bounds = %q..%q", wantFirst, wantLast)
	}
	// Full scan re-reads every block, including the one the last bound
	// was decoded from.
	n := 0
	if err := r.Scan(nil, nil, func(record.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("scan visited %d, want %d", n, len(recs))
	}
	first, last = r.Bounds()
	if string(first) != wantFirst || string(last) != wantLast {
		t.Fatalf("Bounds changed after full scan: %q..%q, want %q..%q",
			first, last, wantFirst, wantLast)
	}
}

func TestBlockCacheServesGets(t *testing.T) {
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), seqRecords(2000))
	defer r.Close()
	c := newCountingCache()
	r.SetBlockCache(c)

	key := []byte("key-001234")
	for i := 0; i < 3; i++ {
		got, ok, err := r.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get #%d: ok=%v err=%v", i, ok, err)
		}
		if string(got.Value) != "value-1234" {
			t.Fatalf("Get #%d = %q", i, got.Value)
		}
	}
	if c.puts != 1 {
		t.Fatalf("puts = %d, want 1 (one block filled once)", c.puts)
	}
	if c.hits != 2 {
		t.Fatalf("hits = %d, want 2 (second and third Get)", c.hits)
	}

	// Scans hit the same cached blocks.
	before := c.puts
	if err := r.Scan([]byte("key-001234"), []byte("key-001236"), func(record.Record) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if c.puts != before && c.hits < 3 {
		t.Fatalf("scan neither hit nor reused the cache: puts=%d hits=%d", c.puts, c.hits)
	}
}

func TestBlockCacheDroppedOnRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	r := buildTable(t, path, seqRecords(100))
	c := newCountingCache()
	r.SetBlockCache(c)
	if _, ok, err := r.Get([]byte("key-000050")); !ok || err != nil {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	if len(c.dropped) != 1 || c.dropped[0] != path {
		t.Fatalf("DropTable calls = %v, want [%s]", c.dropped, path)
	}
	if len(c.blocks) != 0 {
		t.Fatalf("%d blocks still cached after DropTable", len(c.blocks))
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("table file still present after Remove: %v", err)
	}
}

// A retained reader keeps serving reads after Remove; the unlink and
// cache drop happen only when the pin is released.
func TestReaderPinsFileAcrossRemove(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	r := buildTable(t, path, seqRecords(500))
	c := newCountingCache()
	r.SetBlockCache(c)

	r.Retain()
	if err := r.Remove(); err != nil {
		t.Fatal(err)
	}
	// Still readable through the pin: the fd is open and, on POSIX, the
	// unlink is deferred to the final Release anyway.
	got, ok, err := r.Get([]byte("key-000123"))
	if err != nil || !ok || string(got.Value) != "value-123" {
		t.Fatalf("Get after Remove under pin: %+v ok=%v err=%v", got, ok, err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("file unlinked while pinned: %v", err)
	}
	if len(c.dropped) != 0 {
		t.Fatalf("cache dropped while pinned: %v", c.dropped)
	}
	if err := r.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file still present after final release: %v", err)
	}
	if len(c.dropped) != 1 {
		t.Fatalf("DropTable calls after final release = %v", c.dropped)
	}
}

func TestMergeCancel(t *testing.T) {
	dir := t.TempDir()
	a := buildTable(t, filepath.Join(dir, "a.sst"), seqRecords(1000))
	defer a.Close()
	out := filepath.Join(dir, "m.sst")
	polls := 0
	_, err := Merge(out, MergeOptions{
		Cancel: func() bool { polls++; return polls > 10 },
	}, a)
	if !errors.Is(err, ErrMergeCanceled) {
		t.Fatalf("Merge err = %v, want ErrMergeCanceled", err)
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("canceled merge left output behind: %v", err)
	}
}

// The rate limiter must pace the merge to roughly inputBytes/rate of
// (virtual) time, in bounded sleep slices a canceller can interrupt.
func TestMergeRateLimitPacing(t *testing.T) {
	dir := t.TempDir()
	recs := make([]record.Record, 200)
	total := 0
	for i := range recs {
		recs[i] = record.Record{
			Key:     []byte(fmt.Sprintf("key-%06d", i)),
			Value:   bytes.Repeat([]byte("x"), 100),
			Version: uint64(i + 1),
		}
		total += recs[i].EncodedSize()
	}
	src := buildTable(t, filepath.Join(dir, "src.sst"), recs)
	defer src.Close()

	vc := clock.NewVirtual(time.Unix(0, 0))
	const rate = 64 << 10 // bytes per virtual second
	done := make(chan error, 1)
	var merged *Reader
	go func() {
		var err error
		merged, err = Merge(filepath.Join(dir, "m.sst"), MergeOptions{
			RateLimitBytesPerSec: rate,
			Clock:                vc,
		}, src)
		done <- err
	}()

	// Drive the virtual clock: whenever the merge parks in a sleep
	// slice, advance past it.
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			defer merged.Close()
			elapsed := vc.Since(time.Unix(0, 0))
			want := time.Duration(float64(total) / rate * float64(time.Second))
			if elapsed < want/2 {
				t.Fatalf("merge of %d bytes at %d B/s took %v virtual time, want >= %v",
					total, rate, elapsed, want/2)
			}
			if merged.Count() != uint64(len(recs)) {
				t.Fatalf("merged Count = %d, want %d", merged.Count(), len(recs))
			}
			return
		default:
		}
		if vc.PendingTimers() > 0 {
			vc.Advance(rateLimitSliceMax)
		} else {
			runtime.Gosched()
		}
	}
}

// A canceller must not wait for the full sleep backlog: sleeps are
// sliced, and wait returns as soon as cancel flips.
func TestMergeRateLimitCancelDuringSleep(t *testing.T) {
	dir := t.TempDir()
	src := buildTable(t, filepath.Join(dir, "src.sst"), seqRecords(500))
	defer src.Close()

	vc := clock.NewVirtual(time.Unix(0, 0))
	var canceled bool
	var mu sync.Mutex
	out := filepath.Join(dir, "m.sst")
	done := make(chan error, 1)
	go func() {
		_, err := Merge(out, MergeOptions{
			RateLimitBytesPerSec: 1, // one byte per second: parks immediately
			Clock:                vc,
			Cancel: func() bool {
				mu.Lock()
				defer mu.Unlock()
				return canceled
			},
		}, src)
		done <- err
	}()

	vc.BlockUntilWaiters(1) // merge is parked in its first sleep slice
	mu.Lock()
	canceled = true
	mu.Unlock()
	// One slice is all it should take to notice.
	for {
		select {
		case err := <-done:
			if !errors.Is(err, ErrMergeCanceled) {
				t.Fatalf("Merge err = %v, want ErrMergeCanceled", err)
			}
			if _, err := os.Stat(out); !os.IsNotExist(err) {
				t.Fatalf("canceled merge left output behind: %v", err)
			}
			return
		default:
		}
		if vc.PendingTimers() > 0 {
			vc.Advance(rateLimitSliceMax)
		} else {
			runtime.Gosched()
		}
	}
}

func BenchmarkGetBlockCache(b *testing.B) {
	r := buildTable(b, filepath.Join(b.TempDir(), "t.sst"), seqRecords(10000))
	defer r.Close()
	r.SetBlockCache(newCountingCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i%10000))
		if _, ok, err := r.Get(key); !ok || err != nil {
			b.Fatalf("miss on %q: %v", key, err)
		}
	}
}

func BenchmarkScan100BlockCache(b *testing.B) {
	r := buildTable(b, filepath.Join(b.TempDir(), "t.sst"), seqRecords(10000))
	defer r.Close()
	r.SetBlockCache(newCountingCache())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = r.Scan([]byte("key-005000"), nil, func(record.Record) bool {
			n++
			return n < 100
		})
	}
}
