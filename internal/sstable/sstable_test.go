package sstable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"scads/internal/record"
)

func buildTable(t testing.TB, path string, recs []record.Record) *Reader {
	t.Helper()
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func seqRecords(n int) []record.Record {
	recs := make([]record.Record, n)
	for i := range recs {
		recs[i] = record.Record{
			Key:     []byte(fmt.Sprintf("key-%06d", i)),
			Value:   []byte(fmt.Sprintf("value-%d", i)),
			Version: uint64(i + 1),
		}
	}
	return recs
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := seqRecords(100)
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), recs)
	defer r.Close()

	if r.Count() != 100 {
		t.Fatalf("Count = %d", r.Count())
	}
	first, last := r.Bounds()
	if string(first) != "key-000000" || string(last) != "key-000099" {
		t.Fatalf("Bounds = %q..%q", first, last)
	}
	for _, want := range recs {
		got, ok, err := r.Get(want.Key)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(got.Value, want.Value) || got.Version != want.Version {
			t.Fatalf("Get(%q) = %+v,%v", want.Key, got, ok)
		}
	}
}

func TestGetMissing(t *testing.T) {
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), seqRecords(100))
	defer r.Close()
	for _, k := range []string{"", "aaa", "key-000050x", "zzz"} {
		if _, ok, err := r.Get([]byte(k)); err != nil || ok {
			t.Fatalf("Get(%q) = ok=%v err=%v, want miss", k, ok, err)
		}
	}
}

func TestScanRange(t *testing.T) {
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), seqRecords(200))
	defer r.Close()
	var got []string
	err := r.Scan([]byte("key-000050"), []byte("key-000060"), func(rec record.Record) bool {
		got = append(got, string(rec.Key))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "key-000050" || got[9] != "key-000059" {
		t.Fatalf("Scan = %v", got)
	}
}

func TestScanEarlyStopAndUnbounded(t *testing.T) {
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), seqRecords(50))
	defer r.Close()
	n := 0
	if err := r.Scan(nil, nil, func(record.Record) bool { n++; return n < 7 }); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("visited %d, want 7", n)
	}
	n = 0
	if err := r.Scan(nil, nil, func(record.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("unbounded scan visited %d, want 50", n)
	}
}

func TestEmptyTable(t *testing.T) {
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), nil)
	defer r.Close()
	if r.Count() != 0 {
		t.Fatalf("Count = %d", r.Count())
	}
	if _, ok, err := r.Get([]byte("any")); ok || err != nil {
		t.Fatalf("Get on empty = %v,%v", ok, err)
	}
	if err := r.Scan(nil, nil, func(record.Record) bool { t.Fatal("visited record in empty table"); return false }); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	w, err := NewWriter(filepath.Join(t.TempDir(), "t.sst"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.Add(record.Record{Key: []byte("b"), Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(record.Record{Key: []byte("a"), Version: 1}); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := w.Add(record.Record{Key: []byte("b"), Version: 2}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestLargeValuesCrossChunks(t *testing.T) {
	// Values bigger than the 64 KiB scan chunk force the grow path.
	recs := []record.Record{
		{Key: []byte("big-1"), Value: bytes.Repeat([]byte("a"), 100<<10), Version: 1},
		{Key: []byte("big-2"), Value: bytes.Repeat([]byte("b"), 200<<10), Version: 2},
		{Key: []byte("small"), Value: []byte("s"), Version: 3},
	}
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), recs)
	defer r.Close()
	for _, want := range recs {
		got, ok, err := r.Get(want.Key)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", want.Key, ok, err)
		}
		if !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("Get(%q): value mismatch (%d vs %d bytes)", want.Key, len(got.Value), len(want.Value))
		}
	}
	n := 0
	if err := r.Scan(nil, nil, func(record.Record) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("scan visited %d, want 3", n)
	}
}

func TestCorruptFooterRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.sst")
	r := buildTable(t, path, seqRecords(10))
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Smash the magic.
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt table opened successfully")
	}
	// Too-short file.
	if err := os.WriteFile(path, []byte("tiny"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("tiny file opened successfully")
	}
}

func TestTombstonesSurviveRoundTrip(t *testing.T) {
	recs := []record.Record{
		{Key: []byte("a"), Value: []byte("1"), Version: 1},
		{Key: []byte("b"), Version: 2, Tombstone: true},
	}
	r := buildTable(t, filepath.Join(t.TempDir(), "t.sst"), recs)
	defer r.Close()
	got, ok, err := r.Get([]byte("b"))
	if err != nil || !ok || !got.Tombstone {
		t.Fatalf("tombstone lost: %+v ok=%v err=%v", got, ok, err)
	}
}

func TestMergeTwoTables(t *testing.T) {
	dir := t.TempDir()
	// Newer table: keys 0..9 at version 100; older: keys 5..14 at version 1.
	var newer, older []record.Record
	for i := 0; i < 10; i++ {
		newer = append(newer, record.Record{Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("new"), Version: 100})
	}
	for i := 5; i < 15; i++ {
		older = append(older, record.Record{Key: []byte(fmt.Sprintf("k%02d", i)), Value: []byte("old"), Version: 1})
	}
	rNew := buildTable(t, filepath.Join(dir, "new.sst"), newer)
	rOld := buildTable(t, filepath.Join(dir, "old.sst"), older)
	defer rNew.Close()
	defer rOld.Close()

	merged, err := Merge(filepath.Join(dir, "merged.sst"), MergeOptions{}, rNew, rOld)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Count() != 15 {
		t.Fatalf("merged Count = %d, want 15", merged.Count())
	}
	for i := 0; i < 15; i++ {
		key := []byte(fmt.Sprintf("k%02d", i))
		got, ok, err := merged.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", key, ok, err)
		}
		want := "old"
		if i < 10 {
			want = "new"
		}
		if string(got.Value) != want {
			t.Fatalf("Get(%q) = %q, want %q", key, got.Value, want)
		}
	}
}

func TestMergeDropsTombstones(t *testing.T) {
	dir := t.TempDir()
	live := buildTable(t, filepath.Join(dir, "live.sst"), []record.Record{
		{Key: []byte("a"), Value: []byte("v"), Version: 1},
		{Key: []byte("b"), Version: 5, Tombstone: true},
	})
	old := buildTable(t, filepath.Join(dir, "old.sst"), []record.Record{
		{Key: []byte("b"), Value: []byte("shadowed"), Version: 1},
		{Key: []byte("c"), Value: []byte("w"), Version: 1},
	})
	defer live.Close()
	defer old.Close()

	merged, err := Merge(filepath.Join(dir, "m.sst"), MergeOptions{DropTombstones: true}, live, old)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Count() != 2 {
		t.Fatalf("Count = %d, want 2 (a and c)", merged.Count())
	}
	if _, ok, _ := merged.Get([]byte("b")); ok {
		t.Fatal("tombstoned key survived major compaction")
	}
}

func TestMergeLWWAcrossTables(t *testing.T) {
	dir := t.TempDir()
	// The "older" table holds a *newer version* (replication can
	// deliver out of order); LWW must pick it regardless of stack
	// position.
	a := buildTable(t, filepath.Join(dir, "a.sst"), []record.Record{
		{Key: []byte("k"), Value: []byte("stale"), Version: 1},
	})
	b := buildTable(t, filepath.Join(dir, "b.sst"), []record.Record{
		{Key: []byte("k"), Value: []byte("fresh"), Version: 9},
	})
	defer a.Close()
	defer b.Close()
	merged, err := Merge(filepath.Join(dir, "m.sst"), MergeOptions{}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	got, ok, _ := merged.Get([]byte("k"))
	if !ok || string(got.Value) != "fresh" {
		t.Fatalf("LWW merge picked %q", got.Value)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	dir := t.TempDir()
	e1 := buildTable(t, filepath.Join(dir, "e1.sst"), nil)
	e2 := buildTable(t, filepath.Join(dir, "e2.sst"), nil)
	defer e1.Close()
	defer e2.Close()
	merged, err := Merge(filepath.Join(dir, "m.sst"), MergeOptions{}, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Count() != 0 {
		t.Fatalf("Count = %d", merged.Count())
	}
}

// Property: any sorted unique key set round-trips through a table.
func TestQuickTableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n := 0
	f := func(keys map[string]string) bool {
		n++
		path := filepath.Join(dir, fmt.Sprintf("q%d.sst", n))
		var recs []record.Record
		for k, v := range keys {
			recs = append(recs, record.Record{Key: []byte(k), Value: []byte(v), Version: 1})
		}
		sortRecords(recs)
		w, err := NewWriter(path)
		if err != nil {
			return false
		}
		for _, r := range recs {
			if err := w.Add(r); err != nil {
				return false
			}
		}
		if err := w.Finish(); err != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		for k, v := range keys {
			got, ok, err := r.Get([]byte(k))
			if err != nil || !ok || string(got.Value) != v {
				return false
			}
		}
		return r.Count() == uint64(len(keys))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func sortRecords(recs []record.Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && bytes.Compare(recs[j].Key, recs[j-1].Key) < 0; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

func BenchmarkGet(b *testing.B) {
	r := buildTable(b, filepath.Join(b.TempDir(), "t.sst"), seqRecords(10000))
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i%10000))
		if _, ok, err := r.Get(key); !ok || err != nil {
			b.Fatalf("miss on %q: %v", key, err)
		}
	}
}

func BenchmarkScan100(b *testing.B) {
	r := buildTable(b, filepath.Join(b.TempDir(), "t.sst"), seqRecords(10000))
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		_ = r.Scan([]byte("key-005000"), nil, func(record.Record) bool {
			n++
			return n < 100
		})
	}
}
