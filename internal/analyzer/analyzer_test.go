package analyzer

import (
	"errors"
	"strings"
	"testing"

	"scads/internal/query"
)

const socialSchema = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1

QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func analyzeOne(t *testing.T, src, name string) (*Result, error) {
	t.Helper()
	s, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	q, ok := s.Queries[name]
	if !ok {
		t.Fatalf("query %q not in schema", name)
	}
	return AnalyzeQuery(s, q, Config{})
}

func TestAcceptsSocialQueries(t *testing.T) {
	s := query.MustParse(socialSchema)
	results, err := Analyze(s, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("accepted %d queries, want 3", len(results))
	}

	fu := results["findUser"]
	if fu.Shape != ShapePKLookup || fu.Fanout != 1 || fu.ServersTouched != 1 {
		t.Fatalf("findUser = %+v", fu)
	}

	fr := results["friends"]
	if fr.Shape != ShapeIndexScan {
		t.Fatalf("friends shape = %v", fr.Shape)
	}
	if fr.Fanout != 5000 {
		t.Fatalf("friends fanout = %d", fr.Fanout)
	}

	bd := results["friendsWithUpcomingBirthdays"]
	if bd.Shape != ShapeJoinView {
		t.Fatalf("birthdays shape = %v", bd.Shape)
	}
	if bd.Fanout != 50 { // LIMIT-tightened from 5000
		t.Fatalf("birthdays fanout=%d", bd.Fanout)
	}
	if bd.UpdateWork != 5001 { // 5000 reverse fan-in + 1 forward lookup
		t.Fatalf("birthdays updateWork=%d", bd.UpdateWork)
	}
	if bd.LookedFanout != 1 {
		t.Fatalf("birthdays lookedFanout=%d", bd.LookedFanout)
	}
	if bd.Driving.Name != "friendships" || bd.Looked.Name != "users" {
		t.Fatalf("birthdays tables = %s, %s", bd.Driving.Name, bd.Looked.Name)
	}
}

func TestRejectsTwitterShape(t *testing.T) {
	// Unbounded followers: no CARDINALITY on followee.
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY followersOf
SELECT u.* FROM follows f JOIN users u ON f.follower = u.id
WHERE f.followee = ?user LIMIT 100
`
	_, err := analyzeOne(t, src, "followersOf")
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("Twitter-shaped query accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "CARDINALITY") {
		t.Fatalf("rejection does not explain the missing bound: %v", err)
	}
}

func TestRejectsUnboundedReverseMaintenance(t *testing.T) {
	// Fan-out is bounded (follower card) but reverse fan-in of the
	// join column is not: updating a user row would touch unbounded
	// view entries.
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY following
SELECT u.* FROM follows f JOIN users u ON f.followee = u.id
WHERE f.follower = ?user LIMIT 100
`
	_, err := analyzeOne(t, src, "following")
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("unbounded reverse maintenance accepted: %v", err)
	}
}

func TestAcceptsBothCardinalitiesDeclared(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000,
    CARDINALITY followee 5000
)
QUERY following
SELECT u.* FROM follows f JOIN users u ON f.followee = u.id
WHERE f.follower = ?user LIMIT 100
`
	res, err := analyzeOne(t, src, "following")
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdateWork != 5001 {
		t.Fatalf("UpdateWork = %d", res.UpdateWork)
	}
}

func TestPKPrefixJoinFriendsOfFriends(t *testing.T) {
	// The Figure 3 cascade: a friendships self-join through the PK
	// prefix. Bounded because f1 declares a cardinality.
	src := `
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 200
`
	res, err := analyzeOne(t, src, "friendsOfFriends")
	if err != nil {
		t.Fatal(err)
	}
	if res.Shape != ShapeJoinView {
		t.Fatalf("Shape = %v", res.Shape)
	}
	if res.LookedFanout != 5000 {
		t.Fatalf("LookedFanout = %d", res.LookedFanout)
	}
	if res.Fanout != 200 { // LIMIT-tightened from 5000*5000
		t.Fatalf("Fanout = %d", res.Fanout)
	}
	if res.UpdateWork != 10000 { // 5000 reverse + 5000 forward
		t.Fatalf("UpdateWork = %d", res.UpdateWork)
	}

	// Without the bound on the prefix column it is rejected.
	src2 := `
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f2 5000 )
QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 200
`
	// (fanout check happens after join-bound check; with only f2
	// bounded, the prefix join on b.f1 is unbounded)
	if _, err := analyzeOne(t, src2, "friendsOfFriends"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("unbounded prefix join accepted: %v", err)
	}
}

func TestRejectsNonKeyJoin(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, city string )
ENTITY posts ( id string PRIMARY KEY, author string, CARDINALITY author 1000 )
QUERY postsByCity
SELECT p.* FROM users u JOIN posts p ON u.city = p.author
WHERE u.id = ?user LIMIT 10
`
	_, err := analyzeOne(t, src, "postsByCity")
	if !errors.Is(err, ErrUnbounded) || !strings.Contains(err.Error(), "primary key") {
		t.Fatalf("non-key join accepted: %v", err)
	}
}

func TestRejectsExcessiveLimit(t *testing.T) {
	src := `
ENTITY t ( a string PRIMARY KEY )
QUERY q SELECT * FROM t LIMIT 50000
`
	_, err := analyzeOne(t, src, "q")
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("50k LIMIT accepted: %v", err)
	}
}

func TestRejectsUpdateWorkAboveK(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY edges (
    a string, b string,
    PRIMARY KEY (a, b),
    CARDINALITY a 9000,
    CARDINALITY b 9000
)
QUERY q
SELECT u.* FROM edges e JOIN users u ON e.b = u.id WHERE e.a = ?x LIMIT 100
`
	s := query.MustParse(src)
	_, err := AnalyzeQuery(s, s.Queries["q"], Config{MaxUpdateWork: 5000})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("update work above K accepted: %v", err)
	}
	// With the default K it passes.
	if _, err := AnalyzeQuery(s, s.Queries["q"], Config{}); err != nil {
		t.Fatalf("update work below default K rejected: %v", err)
	}
}

func TestRangePredicateShapes(t *testing.T) {
	base := `
ENTITY msgs (
    channel string,
    ts int,
    author string,
    PRIMARY KEY (channel, ts),
    CARDINALITY channel 10000
)
`
	// range + matching ORDER BY: accepted.
	res, err := analyzeOne(t, base+`
QUERY recent SELECT * FROM msgs WHERE channel = ?c AND ts > ?since ORDER BY ts DESC LIMIT 50
`, "recent")
	if err != nil {
		t.Fatal(err)
	}
	if res.RangePred == nil || res.RangePred.Col.Column != "ts" {
		t.Fatalf("RangePred = %+v", res.RangePred)
	}

	// range + conflicting ORDER BY: the inequality cannot shape the key
	// range, so it is demoted to a residual filter pushed down to
	// storage — bounded here by the channel cardinality.
	res, err = analyzeOne(t, base+`
QUERY demoted SELECT * FROM msgs WHERE channel = ?c AND ts > ?since ORDER BY author LIMIT 50
`, "demoted")
	if err != nil {
		t.Fatalf("demotable inequality rejected: %v", err)
	}
	if res.RangePred != nil {
		t.Fatalf("RangePred = %+v, want demotion to residual", res.RangePred)
	}
	if len(res.ResidualPreds) != 1 || res.ResidualPreds[0].Col.Column != "ts" {
		t.Fatalf("ResidualPreds = %+v", res.ResidualPreds)
	}

	// two range predicates with nothing bounding the visited rows (no
	// equality prefix): still rejected — a residual filter would have
	// to visit an unbounded span.
	if _, err := analyzeOne(t, base+`
QUERY bad2 SELECT * FROM msgs WHERE ts > ?a AND channel < ?b LIMIT 50
`, "bad2"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("two unbounded ranges accepted: %v", err)
	}

	// equality after range: rejected (cannot form a contiguous range).
	if _, err := analyzeOne(t, base+`
QUERY bad3 SELECT * FROM msgs WHERE ts > ?a AND channel = ?c LIMIT 50
`, "bad3"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("eq-after-range accepted: %v", err)
	}

	// same column constrained twice: rejected.
	if _, err := analyzeOne(t, base+`
QUERY bad4 SELECT * FROM msgs WHERE channel = ?a AND channel = ?b LIMIT 50
`, "bad4"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("duplicate eq accepted: %v", err)
	}
}

func TestMixedOrderDirectionsRejected(t *testing.T) {
	src := `
ENTITY t ( a string, b int, c int, PRIMARY KEY (a), CARDINALITY a 10 )
QUERY q SELECT * FROM t ORDER BY b, c DESC LIMIT 5
`
	if _, err := analyzeOne(t, src, "q"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("mixed-direction order accepted: %v", err)
	}
}

func TestJoinRequiresDrivingPredicate(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id LIMIT 10
`
	if _, err := analyzeOne(t, src, "q"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("join without driving predicate accepted: %v", err)
	}
}

func TestJoinPredicateOnLookedTableRejected(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user AND p.name = ?n LIMIT 10
`
	if _, err := analyzeOne(t, src, "q"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("predicate on looked-up table accepted: %v", err)
	}
}

func TestReversedJoinSpellingAccepted(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, birthday int )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q
SELECT p.* FROM friendships f JOIN users p ON p.id = f.f2
WHERE f.f1 = ?user LIMIT 10
`
	res, err := analyzeOne(t, src, "q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Shape != ShapeJoinView {
		t.Fatalf("Shape = %v", res.Shape)
	}
}

func TestLimitTightensFanout(t *testing.T) {
	src := `
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000 )
QUERY topFriends SELECT * FROM friendships WHERE f1 = ?user LIMIT 10
`
	res, err := analyzeOne(t, src, "topFriends")
	if err != nil {
		t.Fatal(err)
	}
	if res.Fanout != 10 {
		t.Fatalf("Fanout = %d, want LIMIT-tightened 10", res.Fanout)
	}
}

func TestAnalyzeAggregatesRejections(t *testing.T) {
	src := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows ( follower string, followee string, PRIMARY KEY (follower, followee) )
QUERY good SELECT * FROM users WHERE id = ?u LIMIT 1
QUERY bad1 SELECT u.* FROM follows f JOIN users u ON f.follower = u.id WHERE f.followee = ?x LIMIT 10
QUERY bad2 SELECT * FROM users LIMIT 99999
`
	s := query.MustParse(src)
	results, err := Analyze(s, Config{})
	if err == nil {
		t.Fatal("expected aggregated rejections")
	}
	if len(results) != 1 || results["good"] == nil {
		t.Fatalf("results = %v", results)
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad1") || !strings.Contains(msg, "bad2") {
		t.Fatalf("aggregated error missing queries: %v", msg)
	}
}

func TestShapeString(t *testing.T) {
	if ShapePKLookup.String() != "pk-lookup" || ShapeIndexScan.String() != "index-scan" || ShapeJoinView.String() != "join-view" {
		t.Fatal("Shape strings wrong")
	}
}

func BenchmarkAnalyzeSocialSchema(b *testing.B) {
	s := query.MustParse(socialSchema)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(s, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResidualPredicates(t *testing.T) {
	base := `
ENTITY msgs (
    channel string,
    ts int,
    score int,
    PRIMARY KEY (channel, ts),
    CARDINALITY channel 10000
)
`
	// Two inequalities with a cardinality-bounded equality prefix: the
	// first shapes the key range, the second becomes a residual filter.
	res, err := analyzeOne(t, base+`
QUERY hot SELECT * FROM msgs WHERE channel = ?c AND ts > ?since AND score >= ?s LIMIT 50
`, "hot")
	if err != nil {
		t.Fatalf("bounded residual rejected: %v", err)
	}
	if res.RangePred == nil || res.RangePred.Col.Column != "ts" {
		t.Fatalf("RangePred = %+v", res.RangePred)
	}
	if len(res.ResidualPreds) != 1 || res.ResidualPreds[0].Col.Column != "score" {
		t.Fatalf("ResidualPreds = %+v", res.ResidualPreds)
	}

	// A column with both equality and inequality conjuncts stays
	// rejected.
	if _, err := analyzeOne(t, base+`
QUERY both SELECT * FROM msgs WHERE channel = ?c AND channel > ?d AND ts > ?a LIMIT 50
`, "both"); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("eq+range on one column accepted: %v", err)
	}
}

func TestResidualRejectedOnJoinViews(t *testing.T) {
	src := `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    since int,
    weight int,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY q
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?u AND f.since > ?a AND f.weight > ?b LIMIT 50
`
	s := query.MustParse(src)
	if _, err := AnalyzeQuery(s, s.Queries["q"], Config{}); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("join view with residual accepted: %v", err)
	}
}
