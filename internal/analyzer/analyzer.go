// Package analyzer performs SCADS's scale-independence analysis
// (paper §3.1–3.2): every declared query template is either proven to
// be a bounded contiguous range lookup over a (possibly precomputed)
// index, with O(K) index-maintenance work per base update, or it is
// rejected before it can ever run. "A query that is not a lookup in a
// pre-computed index will be rejected by SCADS, unlike in a
// traditional system which would allow the query to run slowly."
//
// The canonical rejection is the Twitter shape: a join fanning out
// through a column with no declared cardinality bound, where a single
// base update could touch an unbounded number of index entries.
package analyzer

import (
	"errors"
	"fmt"

	"scads/internal/query"
)

// Config bounds what the analyzer will accept.
type Config struct {
	// MaxLimit caps any query's LIMIT. Default 10000.
	MaxLimit int
	// MaxUpdateWork is K in the paper's O(K) update requirement: the
	// largest number of index-entry mutations one base-table update
	// may trigger. Default 10000.
	MaxUpdateWork int
}

func (c Config) withDefaults() Config {
	if c.MaxLimit <= 0 {
		c.MaxLimit = 10000
	}
	if c.MaxUpdateWork <= 0 {
		c.MaxUpdateWork = 10000
	}
	return c
}

// ErrUnbounded is wrapped by every rejection for easy testing with
// errors.Is.
var ErrUnbounded = errors.New("analyzer: query is not scale-independent")

// Shape classifies the physical form a query compiles to.
type Shape int

const (
	// ShapePKLookup reads the base table by primary key directly.
	ShapePKLookup Shape = iota
	// ShapeIndexScan reads a single-table secondary index.
	ShapeIndexScan
	// ShapeJoinView reads a materialized two-table join view.
	ShapeJoinView
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case ShapePKLookup:
		return "pk-lookup"
	case ShapeIndexScan:
		return "index-scan"
	case ShapeJoinView:
		return "join-view"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// Result is the proof object for one accepted query.
type Result struct {
	Query *query.QueryDef
	Shape Shape

	// Driving is the table the WHERE clause filters.
	Driving *query.TableDef
	// Looked is the join's right table (nil otherwise).
	Looked *query.TableDef

	// EqPreds are the equality conjuncts, in WHERE order; they become
	// the index key prefix.
	EqPreds []query.Predicate
	// RangePred is the at-most-one inequality conjunct folded into the
	// contiguous key range.
	RangePred *query.Predicate
	// ResidualPreds are inequality conjuncts the key range cannot
	// express. They are pushed down to storage nodes and evaluated
	// against each visited row, so accepting them requires the
	// equality prefix to bound the visited row count by declared
	// cardinality — the scan stays scale-independent even though the
	// filters are applied after the range lookup.
	ResidualPreds []query.Predicate
	// OrderCols is the validated ORDER BY list.
	OrderCols []query.OrderCol

	// Fanout bounds how many driving-table rows match the equality
	// prefix (1 for a full-PK match).
	Fanout int
	// LookedFanout bounds how many looked-table rows one driving row
	// joins to: 1 for a full-PK join, the declared cardinality for a
	// PK-prefix join (the friends-of-friends shape).
	LookedFanout int
	// UpdateWork bounds index maintenance triggered by one base-table
	// update, per the declared cardinalities.
	UpdateWork int
	// ServersTouched is the worst-case number of storage nodes one
	// execution contacts (always a small constant).
	ServersTouched int
}

// Analyze checks every query in the schema. It returns results for all
// accepted queries; the error (if any) aggregates each rejection.
func Analyze(s *query.Schema, cfg Config) (map[string]*Result, error) {
	cfg = cfg.withDefaults()
	out := make(map[string]*Result, len(s.Queries))
	var rejections []error
	for _, name := range s.QueryOrder {
		res, err := AnalyzeQuery(s, s.Queries[name], cfg)
		if err != nil {
			rejections = append(rejections, err)
			continue
		}
		out[name] = res
	}
	return out, errors.Join(rejections...)
}

// AnalyzeQuery checks a single query template against the schema.
func AnalyzeQuery(s *query.Schema, q *query.QueryDef, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if q.Limit > cfg.MaxLimit {
		return nil, fmt.Errorf("%w: query %s: LIMIT %d exceeds maximum %d",
			ErrUnbounded, q.Name, q.Limit, cfg.MaxLimit)
	}
	if q.Join == nil {
		return analyzeSingle(s, q, cfg)
	}
	return analyzeJoin(s, q, cfg)
}

func analyzeSingle(s *query.Schema, q *query.QueryDef, cfg Config) (*Result, error) {
	driving, _ := s.ResolveTable(q, q.From.Name())
	res := &Result{Query: q, Driving: driving, ServersTouched: 1}

	if err := splitPredicates(q, q.From.Name(), res); err != nil {
		return nil, err
	}
	// When ORDER BY is declared, only an inequality on the first order
	// column can be the contiguous key range; any other inequality is
	// demoted to a residual filter so the index still serves the order
	// directly.
	if res.RangePred != nil && len(q.OrderBy) > 0 && q.OrderBy[0].Col.Column != res.RangePred.Col.Column {
		demoted := *res.RangePred
		res.RangePred = nil
		res.ResidualPreds = append([]query.Predicate{demoted}, res.ResidualPreds...)
	}
	if err := checkResiduals(q, driving, res, cfg); err != nil {
		return nil, err
	}
	if err := checkOrderBy(q, q.From.Name(), res); err != nil {
		return nil, err
	}

	eqCols := predCols(res.EqPreds)
	if driving.IsPrimaryKey(eqCols) && res.RangePred == nil && len(res.ResidualPreds) == 0 && len(res.OrderCols) == 0 {
		res.Shape = ShapePKLookup
		res.Fanout = 1
		res.UpdateWork = 0 // the base row is the index
		return res, nil
	}
	res.Shape = ShapeIndexScan
	res.Fanout = fanoutBound(driving, eqCols, q.Limit)
	res.UpdateWork = 1 // one index entry rewritten per base update
	if res.UpdateWork > cfg.MaxUpdateWork {
		return nil, fmt.Errorf("%w: query %s: update work %d exceeds K=%d",
			ErrUnbounded, q.Name, res.UpdateWork, cfg.MaxUpdateWork)
	}
	return res, nil
}

// checkResiduals validates pushed-down filter conjuncts: every column
// must exist on the driving table, and the equality prefix must bound
// the rows a node visits (declared cardinality, or a full primary key)
// — a residual filter rejects rows *after* they are visited, so LIMIT
// alone no longer caps the scan work.
func checkResiduals(q *query.QueryDef, driving *query.TableDef, res *Result, cfg Config) error {
	if len(res.ResidualPreds) == 0 {
		return nil
	}
	for _, p := range res.ResidualPreds {
		if _, ok := driving.Column(p.Col.Column); !ok {
			return fmt.Errorf("%w: query %s: residual predicate %s references unknown column %s.%s",
				ErrUnbounded, q.Name, p, driving.Name, p.Col.Column)
		}
	}
	bound := fanoutBound(driving, predCols(res.EqPreds), 0)
	if bound == 0 {
		return fmt.Errorf("%w: query %s: residual filter needs the equality prefix to bound the scan — "+
			"declare a CARDINALITY for %s (LIMIT caps returned rows, not rows a filtered scan must visit)",
			ErrUnbounded, q.Name, driving.Name)
	}
	if bound > cfg.MaxLimit {
		return fmt.Errorf("%w: query %s: residual filter may visit %d rows, exceeding the %d-row scan bound",
			ErrUnbounded, q.Name, bound, cfg.MaxLimit)
	}
	return nil
}

func analyzeJoin(s *query.Schema, q *query.QueryDef, cfg Config) (*Result, error) {
	driving, _ := s.ResolveTable(q, q.From.Name())
	looked, _ := s.ResolveTable(q, q.Join.Right.Name())
	res := &Result{Query: q, Driving: driving, Looked: looked, Shape: ShapeJoinView, ServersTouched: 1}

	// The join must navigate left column → right primary key, so each
	// driving row contributes exactly one joined row.
	left, right := q.Join.LeftCol, q.Join.RightCol
	if left.Qualifier != q.From.Name() || right.Qualifier != q.Join.Right.Name() {
		// Allow the reversed spelling "ON p.id = f.f2".
		if right.Qualifier == q.From.Name() && left.Qualifier == q.Join.Right.Name() {
			left, right = right, left
		} else {
			return nil, fmt.Errorf("%w: query %s: join condition must relate the FROM table to the joined table",
				ErrUnbounded, q.Name)
		}
	}
	switch {
	case looked.IsPrimaryKey([]string{right.Column}):
		res.LookedFanout = 1
	case len(looked.PrimaryKey) > 0 && looked.PrimaryKey[0] == right.Column:
		// PK-prefix join (e.g. friendships self-join for friends of
		// friends): bounded only if the prefix column declares a
		// cardinality.
		card, ok := looked.Cardinality[right.Column]
		if !ok {
			return nil, fmt.Errorf("%w: query %s: PK-prefix join on %s.%s needs a CARDINALITY bound",
				ErrUnbounded, q.Name, looked.Name, right.Column)
		}
		res.LookedFanout = card
	default:
		return nil, fmt.Errorf("%w: query %s: join must target the primary key (or a bounded PK prefix) of %s (got %s); "+
			"non-key joins have unbounded fan-out", ErrUnbounded, q.Name, looked.Name, right)
	}

	// WHERE must filter the driving table only (the view key starts
	// with those columns).
	if err := splitPredicates(q, q.From.Name(), res); err != nil {
		return nil, err
	}
	if len(res.ResidualPreds) > 0 {
		return nil, fmt.Errorf("%w: query %s: multiple range predicates (%s, %s) cannot form one contiguous key range over a join view",
			ErrUnbounded, q.Name, *res.RangePred, res.ResidualPreds[0])
	}
	if len(res.EqPreds) == 0 {
		return nil, fmt.Errorf("%w: query %s: a join view needs at least one equality predicate on %s to bound the scan",
			ErrUnbounded, q.Name, driving.Name)
	}

	// ORDER BY may use either side: it becomes part of the view key.
	if err := checkOrderByJoin(q, res); err != nil {
		return nil, err
	}

	// Fan-out: how many driving rows can match the equality prefix?
	eqCols := predCols(res.EqPreds)
	res.Fanout = fanoutBound(driving, eqCols, 0)
	if res.Fanout > 0 {
		res.Fanout *= res.LookedFanout
		if q.Limit > 0 && q.Limit < res.Fanout {
			res.Fanout = q.Limit
		}
	}
	if res.Fanout == 0 {
		return nil, fmt.Errorf("%w: query %s: no CARDINALITY declared for %s.%s — a single lookup could fan out without bound "+
			"(the Twitter case: unbounded followers would not map into SCADS without modification)",
			ErrUnbounded, q.Name, driving.Name, eqCols[0])
	}

	// Update work. A driving-table change rewrites LookedFanout view
	// entries. A looked-table change must locate every driving row
	// pointing at it: that reverse lookup needs a declared cardinality
	// on the join column.
	reverse, ok := driving.Cardinality[left.Column]
	if !ok {
		if driving.IsPrimaryKey([]string{left.Column}) {
			reverse = 1
		} else {
			return nil, fmt.Errorf("%w: query %s: no CARDINALITY declared for %s.%s — an update to %s would trigger unbounded index maintenance",
				ErrUnbounded, q.Name, driving.Name, left.Column, looked.Name)
		}
	}
	res.UpdateWork = reverse + res.LookedFanout
	if res.UpdateWork > cfg.MaxUpdateWork {
		return nil, fmt.Errorf("%w: query %s: update work %d (reverse fan-in of %s.%s) exceeds K=%d",
			ErrUnbounded, q.Name, res.UpdateWork, driving.Name, left.Column, cfg.MaxUpdateWork)
	}
	return res, nil
}

// splitPredicates partitions WHERE into equality prefix + at most one
// range predicate, all referencing tableName.
func splitPredicates(q *query.QueryDef, tableName string, res *Result) error {
	for i := range q.Where {
		p := q.Where[i]
		qual := p.Col.Qualifier
		if qual != "" && qual != tableName {
			return fmt.Errorf("%w: query %s: predicate %s filters a non-driving table; only the FROM table may be filtered",
				ErrUnbounded, q.Name, p)
		}
		if p.Op == query.OpEq {
			if res.RangePred != nil {
				return fmt.Errorf("%w: query %s: equality predicate %s after range predicate %s — the index key cannot express this",
					ErrUnbounded, q.Name, p, *res.RangePred)
			}
			res.EqPreds = append(res.EqPreds, p)
			continue
		}
		if res.RangePred != nil {
			// Only one inequality can shape the contiguous key range;
			// the rest become residual filters pushed down to storage
			// (checkResiduals decides whether that stays bounded — join
			// views reject them outright).
			pred := p
			res.ResidualPreds = append(res.ResidualPreds, pred)
			continue
		}
		pred := p
		res.RangePred = &pred
	}
	// Duplicate-column equality (a = ?x AND a = ?y) is nonsense.
	seen := map[string]bool{}
	for _, p := range res.EqPreds {
		if seen[p.Col.Column] {
			return fmt.Errorf("%w: query %s: column %s constrained twice", ErrUnbounded, q.Name, p.Col)
		}
		seen[p.Col.Column] = true
	}
	if res.RangePred != nil && seen[res.RangePred.Col.Column] {
		return fmt.Errorf("%w: query %s: column %s has both equality and range predicates",
			ErrUnbounded, q.Name, res.RangePred.Col)
	}
	for _, p := range res.ResidualPreds {
		if seen[p.Col.Column] {
			return fmt.Errorf("%w: query %s: column %s has both equality and range predicates",
				ErrUnbounded, q.Name, p.Col)
		}
	}
	return nil
}

// checkOrderBy validates single-table ORDER BY: if a range predicate
// exists, the first order column must be the range column (otherwise
// results would need a post-scan sort, breaking the bounded-work
// guarantee).
func checkOrderBy(q *query.QueryDef, tableName string, res *Result) error {
	for _, o := range q.OrderBy {
		if o.Col.Qualifier != "" && o.Col.Qualifier != tableName {
			return fmt.Errorf("%w: query %s: ORDER BY %s references an unknown table", ErrUnbounded, q.Name, o.Col)
		}
	}
	res.OrderCols = q.OrderBy
	if res.RangePred != nil && len(q.OrderBy) > 0 && q.OrderBy[0].Col.Column != res.RangePred.Col.Column {
		return fmt.Errorf("%w: query %s: ORDER BY %s conflicts with range predicate on %s — one contiguous index range cannot produce this order",
			ErrUnbounded, q.Name, q.OrderBy[0].Col, res.RangePred.Col)
	}
	// Mixed-direction multi-column ORDER BY cannot be served by one
	// forward or reverse scan of a single index.
	for i := 1; i < len(q.OrderBy); i++ {
		if q.OrderBy[i].Desc != q.OrderBy[0].Desc {
			return fmt.Errorf("%w: query %s: mixed ASC/DESC ordering needs a post-scan sort", ErrUnbounded, q.Name)
		}
	}
	return nil
}

func checkOrderByJoin(q *query.QueryDef, res *Result) error {
	res.OrderCols = q.OrderBy
	if res.RangePred != nil && len(q.OrderBy) > 0 {
		first := q.OrderBy[0].Col
		if first.Qualifier == q.From.Name() && first.Column == res.RangePred.Col.Column {
			// range col leads the order: fine
		} else {
			return fmt.Errorf("%w: query %s: ORDER BY %s conflicts with range predicate on %s",
				ErrUnbounded, q.Name, first, res.RangePred.Col)
		}
	}
	for i := 1; i < len(q.OrderBy); i++ {
		if q.OrderBy[i].Desc != q.OrderBy[0].Desc {
			return fmt.Errorf("%w: query %s: mixed ASC/DESC ordering needs a post-scan sort", ErrUnbounded, q.Name)
		}
	}
	return nil
}

// fanoutBound returns the declared bound on rows matching an equality
// prefix, 1 for a full primary key, or limit when the query's LIMIT
// caps the read anyway (single-table case). Returns 0 for "unbounded".
func fanoutBound(t *query.TableDef, eqCols []string, limit int) int {
	if t.IsPrimaryKey(eqCols) {
		return 1
	}
	best := 0
	for _, c := range eqCols {
		if card, ok := t.Cardinality[c]; ok && (best == 0 || card < best) {
			best = card
		}
	}
	if best == 0 {
		return limit // 0 when no limit applies (join case)
	}
	if limit > 0 && limit < best {
		return limit
	}
	return best
}

func predCols(preds []query.Predicate) []string {
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = p.Col.Column
	}
	return out
}
