// Package sla implements the performance-SLA monitor (paper §3.3.1,
// Figure 4 row 1): it ingests per-request latency and success signals,
// maintains sliding-window percentile estimates, and rolls up fixed
// intervals into observations the director consumes. An SLA like
// "99.9% of requests succeed in <100ms, 99.99% success" is checked
// continuously; violations are counted and exposed as the feedback
// signal of the Figure 2 loop.
package sla

import (
	"fmt"
	"math"
	"sync"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
	"scads/internal/mlmodel"
)

// Monitor tracks one SLA over a stream of requests. Safe for
// concurrent use.
type Monitor struct {
	clk  clock.Clock
	spec consistency.PerformanceSLA

	mu            sync.Mutex
	window        *mlmodel.WindowQuantile
	intervalStart time.Time
	reqs          int64
	fails         int64

	totalReqs         int64
	totalFails        int64
	intervals         int64
	violatedIntervals int64
}

// Interval is one rolled-up observation window.
type Interval struct {
	Start, End time.Time
	Requests   int64
	Failures   int64
	// Rate is requests per second over the interval.
	Rate float64
	// Latency is the SLA-percentile latency over the sample window.
	Latency time.Duration
	// SuccessRate is the percentage of successful requests.
	SuccessRate float64
	// Met reports whether both the latency and availability targets
	// held.
	Met bool
}

// String renders the interval for logs.
func (iv Interval) String() string {
	status := "OK"
	if !iv.Met {
		status = "VIOLATION"
	}
	return fmt.Sprintf("[%s] rate=%.1f/s p-lat=%s success=%.3f%% %s",
		iv.End.Format("15:04:05"), iv.Rate, iv.Latency, iv.SuccessRate, status)
}

// NewMonitor returns a monitor for the given SLA. windowSize bounds
// the latency sample window (default 4096).
func NewMonitor(clk clock.Clock, spec consistency.PerformanceSLA, windowSize int) *Monitor {
	if windowSize <= 0 {
		windowSize = 4096
	}
	return &Monitor{
		clk:           clk,
		spec:          spec,
		window:        mlmodel.NewWindow(windowSize),
		intervalStart: clk.Now(),
	}
}

// Spec returns the monitored SLA.
func (m *Monitor) Spec() consistency.PerformanceSLA { return m.spec }

// Record ingests one request outcome.
func (m *Monitor) Record(latency time.Duration, success bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs++
	m.totalReqs++
	if !success {
		m.fails++
		m.totalFails++
		return
	}
	m.window.Add(latency.Seconds())
}

// RecordBatch ingests n requests sharing one latency/outcome — used by
// the simulator, where one tick aggregates thousands of requests.
func (m *Monitor) RecordBatch(n int64, latency time.Duration, success bool) {
	if n <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reqs += n
	m.totalReqs += n
	if !success {
		m.fails += n
		m.totalFails += n
		return
	}
	// Feed a bounded number of samples so huge batches don't flush
	// the window.
	samples := n
	if samples > 64 {
		samples = 64
	}
	for i := int64(0); i < samples; i++ {
		m.window.Add(latency.Seconds())
	}
}

// Roll closes the current interval, returning its summary and starting
// the next one.
func (m *Monitor) Roll() Interval {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.clk.Now()
	iv := Interval{
		Start:    m.intervalStart,
		End:      now,
		Requests: m.reqs,
		Failures: m.fails,
	}
	if secs := now.Sub(m.intervalStart).Seconds(); secs > 0 {
		iv.Rate = float64(iv.Requests) / secs
	}
	q := m.spec.Percentile / 100
	if q <= 0 {
		q = 0.999
	}
	lat := m.window.Quantile(q)
	if !math.IsNaN(lat) {
		iv.Latency = time.Duration(lat * float64(time.Second))
	}
	if iv.Requests > 0 {
		iv.SuccessRate = 100 * float64(iv.Requests-iv.Failures) / float64(iv.Requests)
	} else {
		iv.SuccessRate = 100
	}
	iv.Met = m.metLocked(iv)

	m.intervals++
	if !iv.Met {
		m.violatedIntervals++
	}
	m.reqs, m.fails = 0, 0
	m.intervalStart = now
	return iv
}

func (m *Monitor) metLocked(iv Interval) bool {
	if m.spec.LatencyBound > 0 && iv.Requests > 0 && iv.Latency > m.spec.LatencyBound {
		return false
	}
	if m.spec.SuccessRate > 0 && iv.SuccessRate < m.spec.SuccessRate {
		return false
	}
	return true
}

// Summary aggregates lifetime statistics.
type Summary struct {
	TotalRequests     int64
	TotalFailures     int64
	Intervals         int64
	ViolatedIntervals int64
}

// ViolationRate is the fraction of intervals that missed the SLA.
func (s Summary) ViolationRate() float64 {
	if s.Intervals == 0 {
		return 0
	}
	return float64(s.ViolatedIntervals) / float64(s.Intervals)
}

// Summary returns lifetime statistics.
func (m *Monitor) Summary() Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Summary{
		TotalRequests:     m.totalReqs,
		TotalFailures:     m.totalFails,
		Intervals:         m.intervals,
		ViolatedIntervals: m.violatedIntervals,
	}
}

// CurrentPercentile returns the present latency estimate at the SLA
// percentile (NaN seconds → 0).
func (m *Monitor) CurrentPercentile() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.spec.Percentile / 100
	if q <= 0 {
		q = 0.999
	}
	lat := m.window.Quantile(q)
	if math.IsNaN(lat) {
		return 0
	}
	return time.Duration(lat * float64(time.Second))
}
