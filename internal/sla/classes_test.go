package sla

import (
	"math"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
)

func TestClassesRollAggregates(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	for i := 0; i < 900; i++ {
		c.Record("read", 10*time.Millisecond, true)
	}
	for i := 0; i < 100; i++ {
		c.Record("write", 30*time.Millisecond, true)
	}
	vc.Advance(10 * time.Second)
	up := c.Roll()
	if !up.Met {
		t.Fatalf("healthy rollup not met: %+v", up)
	}
	if math.Abs(up.Rate-100) > 0.01 {
		t.Fatalf("total rate = %v, want 100", up.Rate)
	}
	if math.Abs(up.ClassRates["read"]-90) > 0.01 || math.Abs(up.ClassRates["write"]-10) > 0.01 {
		t.Fatalf("class rates = %v", up.ClassRates)
	}
	// Aggregate latency defends the worst class.
	if up.Latency != 30*time.Millisecond {
		t.Fatalf("latency = %v, want worst class 30ms", up.Latency)
	}
	if up.SuccessRate != 100 {
		t.Fatalf("success = %v", up.SuccessRate)
	}
}

func TestClassesOneClassViolationFailsRollUp(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	for i := 0; i < 1000; i++ {
		c.Record("read", 10*time.Millisecond, true)
		c.Record("write", 250*time.Millisecond, true) // breaches 100ms bound
	}
	vc.Advance(10 * time.Second)
	up := c.Roll()
	if up.Met {
		t.Fatal("rollup met despite write-class violation")
	}
	if !up.ByClass["read"].Met || up.ByClass["write"].Met {
		t.Fatalf("per-class attainment wrong: %+v", up.ByClass)
	}
}

func TestClassesPerClassSpec(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	// Analytics scans tolerate a looser bound.
	c.SetSpec("scan", consistency.PerformanceSLA{Percentile: 99, LatencyBound: time.Second})
	for i := 0; i < 1000; i++ {
		c.Record("scan", 400*time.Millisecond, true)
	}
	vc.Advance(10 * time.Second)
	if up := c.Roll(); !up.Met {
		t.Fatalf("scan class should meet its looser SLA: %+v", up.ByClass["scan"])
	}
	// Same latency under the default spec violates.
	for i := 0; i < 1000; i++ {
		c.Record("read", 400*time.Millisecond, true)
	}
	vc.Advance(10 * time.Second)
	if up := c.Roll(); up.Met {
		t.Fatal("default-spec class should violate at 400ms")
	}
}

func TestClassesSetSpecRetunesLiveMonitor(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	c.Record("read", 400*time.Millisecond, true)
	c.SetSpec("read", consistency.PerformanceSLA{Percentile: 99, LatencyBound: time.Second})
	for i := 0; i < 100; i++ {
		c.Record("read", 400*time.Millisecond, true)
	}
	vc.Advance(10 * time.Second)
	if up := c.Roll(); !up.Met {
		t.Fatal("SetSpec after first sample did not retune the monitor")
	}
}

func TestClassesBatchAndSummaries(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	c.RecordBatch("read", 5000, 20*time.Millisecond, true)
	c.RecordBatch("write", 100, 20*time.Millisecond, false)
	vc.Advance(10 * time.Second)
	up := c.Roll()
	if up.SuccessRate >= 100 {
		t.Fatalf("failures not weighted in: %v", up.SuccessRate)
	}
	s := c.Summaries()
	if s["read"].TotalRequests != 5000 || s["write"].TotalFailures != 100 {
		t.Fatalf("summaries = %+v", s)
	}
}

func TestClassesEmptyRoll(t *testing.T) {
	vc := clock.NewVirtual(t0)
	c := NewClasses(vc, paperSLA(), 0)
	vc.Advance(time.Second)
	up := c.Roll()
	if !up.Met || up.Rate != 0 || up.SuccessRate != 100 {
		t.Fatalf("empty rollup = %+v", up)
	}
}
