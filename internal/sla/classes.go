package sla

import (
	"sort"
	"sync"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
)

// Classes tracks SLO attainment per request class (view-profile,
// update-profile, …) — the per-query granularity of §3.3.1, where each
// query carries its own performance requirement. One Monitor per class
// ingests that class's requests; Roll closes the interval across all
// classes at once and reports both the per-class intervals and the
// aggregate the director consumes: total rate, the worst class's
// latency (the loop defends the weakest query, not the average), and
// whether every class met its bound.
type Classes struct {
	clk         clock.Clock
	defaultSpec consistency.PerformanceSLA
	window      int

	mu       sync.Mutex
	specs    map[string]consistency.PerformanceSLA
	monitors map[string]*Monitor
}

// RollUp is one interval rolled across all classes.
type RollUp struct {
	Start, End time.Time
	// ByClass holds each class's interval.
	ByClass map[string]Interval
	// ClassRates is each class's request rate (req/s) — the mix signal
	// the fleet model consumes.
	ClassRates map[string]float64
	// Rate is the total request rate.
	Rate float64
	// Latency is the worst class's SLA-percentile latency.
	Latency time.Duration
	// SuccessRate is the request-weighted success percentage.
	SuccessRate float64
	// Met reports whether every class met its SLA.
	Met bool
}

// NewClasses returns a per-class tracker. Every class defaults to
// defaultSpec; override individual classes with SetSpec. windowSize
// bounds each class's latency sample window (default 4096).
func NewClasses(clk clock.Clock, defaultSpec consistency.PerformanceSLA, windowSize int) *Classes {
	return &Classes{
		clk:         clk,
		defaultSpec: defaultSpec,
		window:      windowSize,
		specs:       make(map[string]consistency.PerformanceSLA),
		monitors:    make(map[string]*Monitor),
	}
}

// SetSpec pins a per-class SLA, overriding the default for requests
// recorded after the call. It must be set before the class's first
// sample to take effect from the start.
func (c *Classes) SetSpec(class string, spec consistency.PerformanceSLA) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.specs[class] = spec
	if m, ok := c.monitors[class]; ok {
		m.mu.Lock()
		m.spec = spec
		m.mu.Unlock()
	}
}

func (c *Classes) monitor(class string) *Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.monitors[class]
	if !ok {
		spec, has := c.specs[class]
		if !has {
			spec = c.defaultSpec
		}
		m = NewMonitor(c.clk, spec, c.window)
		c.monitors[class] = m
	}
	return m
}

// Record ingests one request outcome for a class.
func (c *Classes) Record(class string, latency time.Duration, success bool) {
	c.monitor(class).Record(latency, success)
}

// RecordBatch ingests n requests of one class sharing a latency and
// outcome (the simulator path).
func (c *Classes) RecordBatch(class string, n int64, latency time.Duration, success bool) {
	c.monitor(class).RecordBatch(n, latency, success)
}

// Roll closes the current interval on every class and aggregates.
func (c *Classes) Roll() RollUp {
	c.mu.Lock()
	monitors := make(map[string]*Monitor, len(c.monitors))
	for class, m := range c.monitors {
		monitors[class] = m
	}
	c.mu.Unlock()

	up := RollUp{
		End:        c.clk.Now(),
		ByClass:    make(map[string]Interval, len(monitors)),
		ClassRates: make(map[string]float64, len(monitors)),
		Met:        true,
	}
	up.Start = up.End
	// Roll classes in sorted order: Rate accumulates float64s, and
	// summing in map-iteration order would make its low bits
	// run-dependent — the rollup feeds e16's bit-identical metrics.
	classes := make([]string, 0, len(monitors))
	for class := range monitors {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	var reqs, fails int64
	for _, class := range classes {
		m := monitors[class]
		iv := m.Roll()
		up.ByClass[class] = iv
		up.ClassRates[class] = iv.Rate
		up.Rate += iv.Rate
		if iv.Start.Before(up.Start) {
			up.Start = iv.Start
		}
		if iv.Latency > up.Latency {
			up.Latency = iv.Latency
		}
		if !iv.Met {
			up.Met = false
		}
		reqs += iv.Requests
		fails += iv.Failures
	}
	if reqs > 0 {
		up.SuccessRate = 100 * float64(reqs-fails) / float64(reqs)
	} else {
		up.SuccessRate = 100
	}
	return up
}

// Summaries returns lifetime statistics per class.
func (c *Classes) Summaries() map[string]Summary {
	c.mu.Lock()
	monitors := make(map[string]*Monitor, len(c.monitors))
	for class, m := range c.monitors {
		monitors[class] = m
	}
	c.mu.Unlock()
	out := make(map[string]Summary, len(monitors))
	for class, m := range monitors {
		out[class] = m.Summary()
	}
	return out
}
