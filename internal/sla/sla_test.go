package sla

import (
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func paperSLA() consistency.PerformanceSLA {
	// "99.9% of requests succeed in <100ms", "99.99% of requests must
	// succeed" — the paper's running example.
	return consistency.PerformanceSLA{Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.99}
}

func TestIntervalMet(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	for i := 0; i < 1000; i++ {
		m.Record(10*time.Millisecond, true)
	}
	vc.Advance(10 * time.Second)
	iv := m.Roll()
	if !iv.Met {
		t.Fatalf("healthy interval not met: %+v", iv)
	}
	if iv.Rate != 100 {
		t.Fatalf("Rate = %v, want 100/s", iv.Rate)
	}
	if iv.SuccessRate != 100 {
		t.Fatalf("SuccessRate = %v", iv.SuccessRate)
	}
	if iv.Latency != 10*time.Millisecond {
		t.Fatalf("Latency = %v", iv.Latency)
	}
}

func TestLatencyViolation(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	// 0.5% of requests at 500ms: p99.9 exceeds the bound.
	for i := 0; i < 1000; i++ {
		lat := 10 * time.Millisecond
		if i%200 == 0 {
			lat = 500 * time.Millisecond
		}
		m.Record(lat, true)
	}
	vc.Advance(time.Second)
	iv := m.Roll()
	if iv.Met {
		t.Fatalf("tail violation not detected: %+v", iv)
	}
	if !strings.Contains(iv.String(), "VIOLATION") {
		t.Fatalf("String() = %q", iv.String())
	}
}

func TestAvailabilityViolation(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	for i := 0; i < 999; i++ {
		m.Record(time.Millisecond, true)
	}
	m.Record(0, false) // 0.1% failures < 99.99% success target
	vc.Advance(time.Second)
	iv := m.Roll()
	if iv.Met {
		t.Fatalf("availability violation not detected: %+v", iv)
	}
}

func TestEmptyIntervalMeets(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	vc.Advance(time.Second)
	iv := m.Roll()
	if !iv.Met || iv.SuccessRate != 100 {
		t.Fatalf("empty interval = %+v", iv)
	}
}

func TestRollResetsCounters(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	m.Record(time.Millisecond, true)
	vc.Advance(time.Second)
	first := m.Roll()
	vc.Advance(time.Second)
	second := m.Roll()
	if first.Requests != 1 || second.Requests != 0 {
		t.Fatalf("requests = %d then %d", first.Requests, second.Requests)
	}
	if !second.Start.Equal(first.End) {
		t.Fatal("intervals not contiguous")
	}
}

func TestRecordBatch(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	m.RecordBatch(5000, 20*time.Millisecond, true)
	m.RecordBatch(1, 0, false)
	m.RecordBatch(0, 0, true)  // no-op
	m.RecordBatch(-5, 0, true) // no-op
	vc.Advance(time.Second)
	iv := m.Roll()
	if iv.Requests != 5001 || iv.Failures != 1 {
		t.Fatalf("batch counts = %d/%d", iv.Requests, iv.Failures)
	}
}

func TestSummaryViolationRate(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	// Interval 1: healthy.
	m.Record(time.Millisecond, true)
	vc.Advance(time.Second)
	m.Roll()
	// Interval 2: violated (all slow).
	for i := 0; i < 100; i++ {
		m.Record(time.Second, true)
	}
	vc.Advance(time.Second)
	m.Roll()
	s := m.Summary()
	if s.Intervals != 2 || s.ViolatedIntervals != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ViolationRate() != 0.5 {
		t.Fatalf("ViolationRate = %v", s.ViolationRate())
	}
	if (Summary{}).ViolationRate() != 0 {
		t.Fatal("empty summary rate")
	}
}

func TestCurrentPercentile(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, paperSLA(), 0)
	if m.CurrentPercentile() != 0 {
		t.Fatal("empty percentile not zero")
	}
	for i := 0; i < 100; i++ {
		m.Record(7*time.Millisecond, true)
	}
	if got := m.CurrentPercentile(); got != 7*time.Millisecond {
		t.Fatalf("CurrentPercentile = %v", got)
	}
	if m.Spec().Percentile != 99.9 {
		t.Fatal("Spec lost")
	}
}

func TestDefaultPercentileWhenUnset(t *testing.T) {
	vc := clock.NewVirtual(t0)
	m := NewMonitor(vc, consistency.PerformanceSLA{LatencyBound: 50 * time.Millisecond}, 0)
	for i := 0; i < 100; i++ {
		m.Record(10*time.Millisecond, true)
	}
	vc.Advance(time.Second)
	if iv := m.Roll(); !iv.Met || iv.Latency == 0 {
		t.Fatalf("interval = %+v", iv)
	}
}
