package scads

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/rpc"
)

const scanTestDDL = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
QUERY pageUsers
SELECT id, name FROM users WHERE id >= ?lo LIMIT 200
`

// seedScanCluster builds an n-node cluster with the users table split
// into `ranges` ranges of `per` rows each, spread across the nodes.
func seedScanCluster(t *testing.T, nodes, ranges, per int, cfg Config) *LocalCluster {
	t.Helper()
	lc, err := NewLocalCluster(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(scanTestDDL); err != nil {
		t.Fatal(err)
	}
	var splits []any
	for at := per; at < ranges*per; at += per {
		splits = append(splits, scanTestID(at))
	}
	if err := lc.SplitTable("users", splits...); err != nil {
		t.Fatal(err)
	}
	if err := lc.SpreadAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ranges*per; i++ {
		if err := lc.Insert("users", Row{"id": scanTestID(i), "name": "n-" + scanTestID(i), "birthday": 1}); err != nil {
			t.Fatal(err)
		}
	}
	for lc.Pump().Drain(4096) > 0 {
	}
	return lc
}

func scanTestID(i int) string { return fmt.Sprintf("user%04d", i) }

// verifyPage checks one pageUsers result for exact content: rows
// [lo, lo+200) in order, projected to id+name.
func verifyPage(rows []Row, lo, total int) error {
	want := total - lo
	if want > 200 {
		want = 200
	}
	if len(rows) != want {
		return fmt.Errorf("got %d rows, want %d", len(rows), want)
	}
	for i, r := range rows {
		id := scanTestID(lo + i)
		if r["id"] != id || r["name"] != "n-"+id {
			return fmt.Errorf("row %d = %v, want id %s", i, r, id)
		}
		if _, ok := r["birthday"]; ok {
			return fmt.Errorf("row %d leaked unprojected column: %v", i, r)
		}
	}
	return nil
}

// TestScanAcrossFencedRange fences a mid-scan range the way a
// migration handoff does: the query must stall until the fence lifts
// and then return exact results, never an error.
func TestScanAcrossFencedRange(t *testing.T) {
	lc := seedScanCluster(t, 3, 6, 100, Config{})
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	rng := m.Ranges()[2] // inside the scanned window

	addr := "local://" + rng.Replicas[0]
	fence := func(on bool) {
		resp, err := lc.Transport.Call(addr, rpc.Request{
			Method: rpc.MethodRangeFence, Namespace: ns,
			Start: rng.Start, End: rng.End, Fence: on,
		})
		if err != nil || resp.Error() != nil {
			t.Errorf("fence(%v): %v %v", on, err, resp.Error())
		}
	}
	fence(true)
	go func() {
		time.Sleep(30 * time.Millisecond)
		fence(false)
	}()

	start := time.Now()
	rows, err := lc.Query("pageUsers", map[string]any{"lo": scanTestID(100)})
	if err != nil {
		t.Fatalf("query across fenced range: %v", err)
	}
	if err := verifyPage(rows, 100, 600); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("query returned in %v — did not wait out the fence", time.Since(start))
	}
}

// TestScanWithCrashedPrimary kills a scanned range's primary: RF=2
// scans must fail over to the surviving replica with exact results.
func TestScanWithCrashedPrimary(t *testing.T) {
	lc := seedScanCluster(t, 4, 6, 100, Config{ReplicationFactor: 2})
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	victim := m.Ranges()[3].Replicas[0]
	lc.CrashNode(victim)

	for i := 0; i < 5; i++ {
		rows, err := lc.Query("pageUsers", map[string]any{"lo": scanTestID(250)})
		if err != nil {
			t.Fatalf("query with crashed primary: %v", err)
		}
		if err := verifyPage(rows, 250, 600); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanLimitExactAtRangeBoundaries drives the public query path
// with windows whose limits land exactly on, before, and after range
// boundaries.
func TestScanLimitExactAtRangeBoundaries(t *testing.T) {
	lc := seedScanCluster(t, 3, 4, 100, Config{})
	// pageUsers LIMIT 200 = exactly two ranges; start the window at a
	// boundary, one short of it, and one past it.
	for _, lo := range []int{100, 99, 101} {
		rows, err := lc.Query("pageUsers", map[string]any{"lo": scanTestID(lo)})
		if err != nil {
			t.Fatal(err)
		}
		if err := verifyPage(rows, lo, 400); err != nil {
			t.Fatalf("lo=%d: %v", lo, err)
		}
	}
}

// TestScanQueryLoadRecordingCoversAllRanges is the regression test for
// the balancer-starvation bug: a multi-range scan must record load on
// every range it overlaps, not just the first.
func TestScanQueryLoadRecordingCoversAllRanges(t *testing.T) {
	lc := seedScanCluster(t, 3, 4, 100, Config{})

	// Reset the window (seeding recorded write load), run one scan
	// spanning ranges 1..3, then snapshot.
	lc.loads.Reset()
	if _, err := lc.Query("pageUsers", map[string]any{"lo": scanTestID(150)}); err != nil {
		t.Fatal(err)
	}
	obs := lc.LoadSnapshot()
	ns := planner.TableNamespace("users")
	recorded := 0
	for _, o := range obs {
		if o.Namespace == ns && o.Ops > 0 {
			recorded++
		}
	}
	// [user0150, user0350) overlaps ranges [100,200), [200,300), [300,400).
	if recorded < 3 {
		t.Fatalf("scan recorded load on %d ranges, want >=3 (balancer starvation bug)", recorded)
	}
}

// TestScanDuringMigrationHammer runs verifying scanners against a
// static dataset while every range is repeatedly migrated across the
// node set. Zero errors and zero wrong results are required — scans
// must ride through fences, flips and teardowns. Run with -race in CI.
func TestScanDuringMigrationHammer(t *testing.T) {
	lc := seedScanCluster(t, 3, 8, 75, Config{})
	ns := planner.TableNamespace("users")
	const total = 8 * 75

	var (
		stop     atomic.Bool
		scanErrs atomic.Int64
		wrong    atomic.Int64
		scans    atomic.Int64
		wg       sync.WaitGroup
	)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				lo := (s*37 + i*53) % (total - 10)
				rows, err := lc.Query("pageUsers", map[string]any{"lo": scanTestID(lo)})
				if err != nil {
					scanErrs.Add(1)
					continue
				}
				if err := verifyPage(rows, lo, total); err != nil {
					t.Log(err)
					wrong.Add(1)
					continue
				}
				scans.Add(1)
			}
		}(s)
	}
	// One direct router-level scanner exercising the scatter-gather
	// path with a large multi-range window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			recs, err := lc.Router().ScanOpts(ns, nil, nil, partition.ScanOptions{Limit: total + 10, Policy: partition.ReadAny})
			if err != nil {
				scanErrs.Add(1)
				continue
			}
			if len(recs) != total {
				wrong.Add(1)
				continue
			}
			scans.Add(1)
		}
	}()

	// Cycle every range across the node set until the scanners have
	// demonstrably overlapped with plenty of migrations.
	nodeIDs := lc.NodeIDs()
	m, _ := lc.Router().Map(ns)
	migrations := 0
	deadline := time.Now().Add(20 * time.Second)
	for r := 0; scans.Load() < 30 && time.Now().Before(deadline); r++ {
		for i, rng := range m.Ranges() {
			key := rng.Start
			if key == nil {
				key = []byte{}
			}
			if err := lc.MoveRange(ns, key, []string{nodeIDs[(r+i)%len(nodeIDs)]}); err != nil {
				t.Errorf("migration round %d range %d: %v", r, i, err)
			}
			migrations++
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	t.Logf("hammer: %d migrations raced %d verified scans", migrations, scans.Load())

	if scanErrs.Load() > 0 || wrong.Load() > 0 {
		t.Fatalf("scans broke under migration churn: errors=%d wrong=%d (ok=%d)",
			scanErrs.Load(), wrong.Load(), scans.Load())
	}
	if scans.Load() == 0 {
		t.Fatal("no scans completed during churn")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
