package scads

import (
	"bytes"
	"fmt"
	"testing"

	"scads/internal/balancer"
	"scads/internal/planner"
)

// skewCluster puts every users range on one primary and hammers a
// contiguous slice of the keyspace so the tracker sees a hot node.
func skewCluster(t *testing.T) *LocalCluster {
	t.Helper()
	lc, _ := newSocialCluster(t, 3, 1)
	seedUsers(t, lc.Cluster, 40)
	// Hot traffic: the same ten users read over and over.
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			id := fmt.Sprintf("user%04d", j)
			if _, _, err := lc.Get("users", Row{"id": id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return lc
}

func TestLoadTrackingRecordsReadsAndWrites(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	seedUsers(t, lc.Cluster, 5)
	for i := 0; i < 3; i++ {
		lc.Get("users", Row{"id": "user0001"})
	}
	obs := lc.LoadSnapshot()
	var users *balancer.RangeObservation
	for i := range obs {
		if obs[i].Namespace == planner.TableNamespace("users") {
			users = &obs[i]
		}
	}
	if users == nil {
		t.Fatal("no load observation for users namespace")
	}
	// 5 writes + 3 reads.
	if users.Ops != 8 {
		t.Fatalf("users ops = %v, want 8", users.Ops)
	}
}

func TestLoadTrackingRecordsQueries(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	seedUsers(t, lc.Cluster, 3)
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	before := len(lc.LoadSnapshot())
	if _, err := lc.Query("findUser", map[string]any{"user": "user0001"}); err != nil {
		t.Fatal(err)
	}
	if after := len(lc.LoadSnapshot()); after < before {
		t.Fatalf("query did not record load: %d -> %d ranges", before, after)
	}
}

func TestRebalancePlanSplitsAndMovesHotRange(t *testing.T) {
	lc := skewCluster(t)
	plan := lc.RebalancePlan(BalanceConfig{})
	if len(plan) == 0 {
		t.Fatal("skewed cluster produced no plan")
	}
	var hasSplit bool
	for _, a := range plan {
		if a.Kind == balancer.ActionSplit {
			hasSplit = true
			if len(a.At) == 0 {
				t.Fatalf("split without a key: %v", a)
			}
		}
	}
	if !hasSplit {
		t.Fatalf("single-range hotspot should be split first: %v", plan)
	}
}

func TestRebalanceExecutesAndDataSurvives(t *testing.T) {
	lc := skewCluster(t)

	// Round 1: the hot range splits.
	plan1, err := lc.Rebalance(BalanceConfig{})
	if err != nil {
		t.Fatalf("rebalance 1: %v", err)
	}
	if len(plan1) == 0 {
		t.Fatal("no actions executed")
	}
	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	if m.Len() < 2 {
		t.Fatalf("users map has %d ranges after split round", m.Len())
	}

	// Window reset: a fresh skewed window drives moves off the hot node.
	for i := 0; i < 50; i++ {
		for j := 0; j < 10; j++ {
			lc.Get("users", Row{"id": fmt.Sprintf("user%04d", j)})
		}
		lc.Get("users", Row{"id": "user0030"})
	}
	plan2, err := lc.Rebalance(BalanceConfig{})
	if err != nil {
		t.Fatalf("rebalance 2: %v", err)
	}
	var moved bool
	for _, a := range plan2 {
		if a.Kind == balancer.ActionMove {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("second round should move ranges: %v", plan2)
	}

	// All 40 rows remain readable after splits + moves.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("user%04d", i)
		r, found, err := lc.Get("users", Row{"id": id})
		if err != nil || !found || r["id"] != id {
			t.Fatalf("Get(%s) after rebalance = %v %v %v", id, r, found, err)
		}
	}

	// The moves actually spread primaries across more than one node.
	m, _ = lc.Router().Map(planner.TableNamespace("users"))
	primaries := map[string]bool{}
	for _, rng := range m.Ranges() {
		primaries[rng.Replicas[0]] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("all ranges still on one primary after rebalance")
	}
}

func TestRebalanceIdleWindowIsNoop(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 1)
	plan, err := lc.Rebalance(BalanceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 0 {
		t.Fatalf("idle cluster rebalanced: %v", plan)
	}
}

func TestRebalanceResetsWindow(t *testing.T) {
	lc := skewCluster(t)
	if _, err := lc.Rebalance(BalanceConfig{}); err != nil {
		t.Fatal(err)
	}
	if n := len(lc.LoadSnapshot()); n != 0 {
		t.Fatalf("window not reset: %d ranges still tracked", n)
	}
}

func TestRebalanceSplitKeysStayInsideRange(t *testing.T) {
	lc := skewCluster(t)
	for _, a := range lc.RebalancePlan(BalanceConfig{}) {
		if a.Kind != balancer.ActionSplit {
			continue
		}
		m, _ := lc.Router().Map(a.Namespace)
		rng := m.Lookup(a.At)
		if !bytes.Equal(rng.Start, a.Start) && len(a.Start) != 0 {
			t.Fatalf("split key %q not inside range starting %q", a.At, a.Start)
		}
	}
}
