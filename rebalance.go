package scads

import (
	"fmt"
	"sync"

	"scads/internal/balancer"
	"scads/internal/cluster"
)

// Re-exported balancer types: load-aware rebalancing plans.
type (
	// BalanceAction is one proposed split or move.
	BalanceAction = balancer.Action
	// BalanceConfig tunes the rebalancing planner.
	BalanceConfig = balancer.Config
)

// RebalancePlan derives a partitioning plan from the workload window
// tracked since the last Rebalance: ranges hot enough that no
// placement can absorb them are split at the tracker's median observed
// key, then whole ranges move from overloaded to underloaded nodes —
// §3.3.1's "current workload information … used to automatically
// configure system parameters such as partitioning". The plan is
// returned without being executed.
func (c *Cluster) RebalancePlan(cfg BalanceConfig) []BalanceAction {
	up := c.dir.Up()
	nodeIDs := make([]string, len(up))
	for i, m := range up {
		nodeIDs[i] = m.ID
	}
	var loads []balancer.RangeLoad
	for _, obs := range c.loads.Snapshot() {
		m, ok := c.router.Map(obs.Namespace)
		if !ok {
			continue
		}
		start := obs.Start
		if len(start) == 0 {
			start = []byte{}
		}
		rng := m.Lookup(start)
		loads = append(loads, balancer.RangeLoad{
			Namespace: obs.Namespace,
			Start:     rng.Start,
			Replicas:  rng.Replicas,
			Ops:       obs.Ops,
			SplitKey:  obs.MedianKey,
		})
	}
	return balancer.Plan(loads, nodeIDs, cfg)
}

// Rebalance plans against the tracked workload window and executes the
// plan: splits change only the partition map (both halves keep their
// replicas); moves migrate data online and flip routing via MoveRange.
// The tracking window resets afterwards so the next plan reflects the
// new layout. Returns the executed actions — on a mid-plan failure the
// returned prefix is exactly what took effect, so the operator (or a
// retry) knows which splits and moves already hold.
func (c *Cluster) Rebalance(cfg BalanceConfig) ([]BalanceAction, error) {
	plan := c.RebalancePlan(cfg)
	executed, err := c.executePlan(plan)
	if err != nil {
		return executed, err
	}
	c.loads.Reset()
	return executed, nil
}

// executePlan applies plan actions in order, returning the executed
// prefix alongside any error.
func (c *Cluster) executePlan(plan []BalanceAction) ([]BalanceAction, error) {
	executed := make([]BalanceAction, 0, len(plan))
	for _, a := range plan {
		switch a.Kind {
		case balancer.ActionSplit:
			m, ok := c.router.Map(a.Namespace)
			if !ok {
				return executed, fmt.Errorf("scads: rebalance: no partition map for %s", a.Namespace)
			}
			if err := m.Split(a.At); err != nil {
				return executed, fmt.Errorf("scads: rebalance split %s: %w", a.Namespace, err)
			}
		case balancer.ActionMove:
			// Re-look up by the range's start: if an earlier action in
			// this plan split the planned range, only the post-split
			// left half — the range still containing a.Start — moves.
			// The right half stays where the split left it and gets its
			// own action in a later plan if it is still hot.
			key := a.Start
			if key == nil {
				key = []byte{}
			}
			if err := c.MoveRange(a.Namespace, key, a.Target); err != nil {
				return executed, fmt.Errorf("scads: rebalance move %s: %w", a.Namespace, err)
			}
		}
		executed = append(executed, a)
	}
	return executed, nil
}

// LoadSnapshot exposes the tracked per-range workload window (for
// operator tooling and tests).
func (c *Cluster) LoadSnapshot() []balancer.RangeObservation {
	return c.loads.Snapshot()
}

// SpreadNamespace redistributes a namespace's ranges round-robin over
// the currently serving nodes (preserving the replication factor),
// migrating data online as needed. The director calls this after
// adding or removing capacity so new machines actually take load —
// the data-movement half of "scaling up and down" (§1.1). Per-range
// migrations run concurrently, bounded by the migration manager's
// parallelism (Config.MigrationParallelism).
func (c *Cluster) SpreadNamespace(namespace string) error {
	m, ok := c.router.Map(namespace)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", namespace)
	}
	up := c.dir.Up()
	if len(up) == 0 {
		return fmt.Errorf("scads: no serving nodes")
	}
	ids := make([]string, len(up))
	for i, mem := range up {
		ids[i] = mem.ID
	}
	rf := c.cfg.ReplicationFactor
	if rf > len(ids) {
		rf = len(ids)
	}
	type move struct {
		idx  int
		key  []byte
		want []string
	}
	var moves []move
	for i, rng := range m.Ranges() {
		want := make([]string, rf)
		for j := 0; j < rf; j++ {
			want[j] = ids[(i+j)%len(ids)]
		}
		if sameReplicas(rng.Replicas, want) {
			continue
		}
		key := rng.Start
		if key == nil {
			key = []byte{}
		}
		moves = append(moves, move{idx: i, key: key, want: want})
	}
	// Distinct ranges migrate independently; the manager's semaphore
	// bounds how many are actually in flight.
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, mv := range moves {
		wg.Add(1)
		go func(mv move) {
			defer wg.Done()
			if err := c.MoveRange(namespace, mv.key, mv.want); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("scads: spread %s range %d: %w", namespace, mv.idx, err)
				}
				errMu.Unlock()
			}
		}(mv)
	}
	wg.Wait()
	return firstErr
}

// SpreadAll runs SpreadNamespace over every namespace with a partition
// map.
func (c *Cluster) SpreadAll() error {
	for _, ns := range c.router.Namespaces() {
		if err := c.SpreadNamespace(ns); err != nil {
			return err
		}
	}
	return nil
}

// DecommissionNode removes a (possibly dead) node from every replica
// group, re-replicating each affected range onto the first candidate
// not already in the group via online migration from the surviving
// replicas, so this is the recovery path after a crash as well as the
// scale-down path before terminating an instance.
func (c *Cluster) DecommissionNode(nodeID string, candidates []string) error {
	for _, ns := range c.router.Namespaces() {
		m, ok := c.router.Map(ns)
		if !ok {
			continue
		}
		for _, rng := range m.Ranges() {
			idx := -1
			for i, id := range rng.Replicas {
				if id == nodeID {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			replacement, err := pickReplacement(rng.Replicas, candidates, c.dir)
			if err != nil {
				return fmt.Errorf("scads: decommission %s from %s: %w", nodeID, ns, err)
			}
			want := append([]string(nil), rng.Replicas...)
			if replacement == "" {
				// No candidate: shrink the group (still ≥1 survivor).
				want = append(want[:idx], want[idx+1:]...)
				if len(want) == 0 {
					return fmt.Errorf("scads: decommission %s would leave %s with no replicas", nodeID, ns)
				}
			} else {
				want[idx] = replacement
			}
			key := rng.Start
			if key == nil {
				key = []byte{}
			}
			if err := c.MoveRange(ns, key, want); err != nil {
				return err
			}
		}
	}
	c.dir.MarkDown(nodeID)
	return nil
}

// pickReplacement returns the first serving candidate not already in
// the replica group ("" when none qualifies).
func pickReplacement(current, candidates []string, dir *cluster.Directory) (string, error) {
	in := make(map[string]bool, len(current))
	for _, id := range current {
		in[id] = true
	}
	for _, cand := range candidates {
		if in[cand] {
			continue
		}
		m, ok := dir.Get(cand)
		if !ok || m.Status != cluster.StatusUp {
			continue
		}
		return cand, nil
	}
	return "", nil
}

func sameReplicas(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
