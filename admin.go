package scads

import (
	"fmt"

	"scads/internal/rpc"
)

// AdminHandler returns an rpc.Handler exposing coordinator-side
// operational state over the same wire protocol the storage nodes
// speak, so scads-ctl can query a coordinator exactly like a node.
// Serve it with rpc.NewServer(c.AdminHandler()) on an operator port.
//
// Methods:
//
//   - ping: answers with "coordinator" (distinguishes a coordinator
//     from a storage node when probing an address).
//   - repairs: the self-healing loop's counters and in-flight jobs
//     (scads-ctl repairs renders the reply).
//   - stats: coordinator-level counters (replication pending,
//     migration cleanups pending) in the numeric stats fields.
//   - tenants: the admission controller's per-tenant quota/shed/admit
//     counters and in-flight watermark (scads-ctl tenants renders the
//     reply).
func (c *Cluster) AdminHandler() rpc.Handler {
	return rpc.HandlerFunc(func(req rpc.Request) rpc.Response {
		switch req.Method {
		case rpc.MethodPing:
			return rpc.Response{ID: req.ID, Found: true, Value: []byte("coordinator")}
		case rpc.MethodRepairs:
			st := c.repairs.Stats()
			return rpc.Response{
				ID:          req.ID,
				Found:       true,
				Value:       []byte(c.repairs.Describe()),
				RecordCount: int64(st.PendingJobs),
			}
		case rpc.MethodStats:
			s := c.Stats()
			return rpc.Response{
				ID:          req.ID,
				Found:       true,
				QueueDepth:  s.Replication.Pending,
				RecordCount: int64(s.Migration.CleanupPending),
				Value:       []byte(fmt.Sprintf("maintenance=%d", s.Maintenance)),
			}
		case rpc.MethodTenants:
			st := c.admission.Stats()
			return rpc.Response{
				ID:          req.ID,
				Found:       true,
				Value:       []byte(st.Describe()),
				QueueDepth:  st.InFlight,
				RecordCount: int64(st.ShedQuota + st.ShedOverload()),
			}
		case rpc.MethodBatch:
			return rpc.ServeBatch(c.AdminHandler(), req)
		default:
			return rpc.Unimplemented(req)
		}
	})
}
