package scads

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"scads/internal/clock"
	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/director"
	"scads/internal/sla"
	"scads/internal/workload"
)

// This file closes the paper's Figure 2 loop end to end against a real
// LocalCluster: a workload trace drives per-class telemetry, the
// director observes SLO attainment through sla.Classes and sizes the
// fleet with the learned per-op cost curves (mlmodel.FleetModel), and
// every scale action moves real data through the lossless migration
// path (ElasticActuator → AddStorageNode/SpreadAll/DecommissionNode).
// A background writer hammers acknowledged writes throughout, so the
// run proves the paper's central elasticity claim: capacity follows
// demand and no acked write is ever lost across scale events.
//
// Telemetry is synthetic (cloudsim.ClassServiceModel on a virtual
// clock), so the control-plane metrics — SLO-violation minutes,
// server-hours, cost — are bit-for-bit deterministic per scenario and
// gateable in CI; the data-plane writer runs on the wall clock against
// the real cluster and is gated only on its hard zero (lost writes).

// elasticDDL is the schema the autoscaling scenarios run against —
// the paper's users entity, enough to exercise real range splits,
// migrations and reads under scale events.
const elasticDDL = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1
`

// ElasticScenario parameterises one end-to-end autoscaling run.
type ElasticScenario struct {
	Name string
	// Seed drives the background writer's key/op choices.
	Seed int64
	// Start anchors the virtual clock; Duration is simulated time.
	Start    time.Time
	Duration time.Duration
	// Tick is the control interval (default 1m).
	Tick time.Duration
	// Trace is the total offered rate (req/s) over time.
	Trace workload.Trace
	// WriteFraction splits Trace into the write class; the rest is
	// reads (default 0.1).
	WriteFraction float64
	// Keys picks which user the background writer touches — the
	// hotspot-shift scenario moves this window across ranges while
	// scale events are in flight.
	Keys workload.Hotspot
	// Service is the synthetic per-class service curve (default:
	// reads 2ms, writes 8ms of server time, 5ms base latency).
	Service cloudsim.ClassServiceModel
	// SLA is the per-class SLO being defended (default: the paper's
	// 99.9% < 100ms, 99.99% availability).
	SLA consistency.PerformanceSLA
	// BootDelay models instance provisioning lag on the virtual
	// clock (default 90s): requested capacity serves only after it.
	BootDelay time.Duration
	// OpsPerTick is how many real cluster operations the control loop
	// drives synchronously each tick (default 6) — guaranteed ledger
	// coverage across every tick; the concurrent writer adds
	// interleaving on top.
	OpsPerTick int
	// InitialServers is the starting fleet (default 3).
	InitialServers int
	// MinServers / MaxServers bound the director (defaults: the
	// replication factor / 16).
	MinServers, MaxServers int
	// ReplicationFactor for the real cluster (default 2).
	ReplicationFactor int
	// PricePerHour prices server-hours (default $0.10).
	PricePerHour float64
}

func (sc ElasticScenario) withDefaults() ElasticScenario {
	if sc.Tick <= 0 {
		sc.Tick = time.Minute
	}
	if sc.WriteFraction <= 0 {
		sc.WriteFraction = 0.1
	}
	if sc.Keys.Users <= 0 {
		sc.Keys.Users = 240
	}
	if sc.Service.Demand == nil {
		sc.Service.Demand = map[string]float64{"read": 0.002, "write": 0.008}
		sc.Service.Base = 5 * time.Millisecond
	}
	if sc.SLA.Zero() {
		sc.SLA = consistency.PerformanceSLA{
			Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.99,
		}
	}
	if sc.BootDelay <= 0 {
		sc.BootDelay = 90 * time.Second
	}
	if sc.OpsPerTick <= 0 {
		sc.OpsPerTick = 6
	}
	if sc.ReplicationFactor <= 0 {
		sc.ReplicationFactor = 2
	}
	if sc.InitialServers <= 0 {
		sc.InitialServers = 3
	}
	if sc.MinServers <= 0 {
		sc.MinServers = sc.ReplicationFactor
	}
	if sc.MaxServers <= 0 {
		sc.MaxServers = 16
	}
	if sc.PricePerHour <= 0 {
		sc.PricePerHour = 0.10
	}
	return sc
}

// ElasticResult summarises one scenario run. The control-plane
// metrics (violation minutes, server-hours, cost, scale counts) are
// deterministic for a given scenario; the write-ledger counts depend
// on wall-clock interleaving but LostWrites and CorruptReads must be
// zero on every run — that is the lossless-migration guarantee.
type ElasticResult struct {
	Name  string
	Ticks int
	// SLOViolationMinutes is simulated minutes in violation of any
	// class's SLO.
	SLOViolationMinutes float64
	// ServerHours is the integral of fleet size over simulated time;
	// CostUSD prices it.
	ServerHours  float64
	CostUSD      float64
	PeakServers  int
	FinalServers int
	// ScaleUps/ScaleDowns count control decisions that acted;
	// NodesAdded/NodesRemoved count the nodes they moved.
	ScaleUps, ScaleDowns     int
	NodesAdded, NodesRemoved int
	// AckedWrites is how many background writes were acknowledged;
	// LostWrites how many of those later read back missing, and
	// CorruptReads how many read back a stale value.
	AckedWrites  int64
	LostWrites   int
	CorruptReads int
}

// bootDelayActuator defers ElasticActuator.Request by a modelled boot
// delay on the virtual clock: the director sees requested capacity as
// Booting until the delay elapses and Poll releases it into the real
// cluster. Scale-down is immediate (terminating runs at API speed).
type bootDelayActuator struct {
	clk   clock.Clock
	delay time.Duration
	inner *ElasticActuator

	mu      sync.Mutex
	pending []time.Time // ready-times of requested-but-unbooted nodes
}

var _ director.Actuator = (*bootDelayActuator)(nil)

func (a *bootDelayActuator) Running() int { return a.inner.Running() }

func (a *bootDelayActuator) Booting() int {
	a.mu.Lock()
	n := len(a.pending)
	a.mu.Unlock()
	return n + a.inner.Booting()
}

func (a *bootDelayActuator) Request(n int) {
	if n <= 0 {
		return
	}
	ready := a.clk.Now().Add(a.delay)
	a.mu.Lock()
	for i := 0; i < n; i++ {
		a.pending = append(a.pending, ready)
	}
	a.mu.Unlock()
}

func (a *bootDelayActuator) Release(n int) { a.inner.Release(n) }

// Poll boots every pending node whose delay has elapsed.
func (a *bootDelayActuator) Poll() {
	now := a.clk.Now()
	due := 0
	a.mu.Lock()
	rest := a.pending[:0]
	for _, t := range a.pending {
		if t.After(now) {
			rest = append(rest, t)
		} else {
			due++
		}
	}
	a.pending = rest
	a.mu.Unlock()
	a.inner.Request(due)
}

// warmElasticModels pre-trains the director's fleet and capacity
// models from the scenario's analytic service curve, the same way a
// production deployment would arrive with models fit offline from
// history (§4's "use of machine learning models"). Two interleaved
// mixes make the per-class regression well-posed.
func warmElasticModels(d *director.Director, sc ElasticScenario) {
	for i := 1; i <= 12; i++ {
		u := 0.07 * float64(i) // utilisation 0.07..0.84
		wf := sc.WriteFraction
		if i%2 == 0 {
			wf = sc.WriteFraction / 2
		}
		mean := wf*sc.Service.Demand["write"] + (1-wf)*sc.Service.Demand["read"]
		rate := u / mean // per-server rate hitting utilisation u
		classRates := map[string]float64{
			"read":  rate * (1 - wf),
			"write": rate * wf,
		}
		lat := sc.Service.Latency(classRates, 1)
		d.Fleet.Observe(classRates, lat.Seconds())
		d.Capacity.Observe(rate, lat.Seconds())
	}
}

// RunElasticScenario executes one autoscaling scenario end to end and
// returns its metrics. It is an error for the actuator to fail a
// scale action; lost or corrupted acked writes are reported in the
// result, not as an error, so callers can gate on them explicitly.
func RunElasticScenario(sc ElasticScenario) (ElasticResult, error) {
	sc = sc.withDefaults()
	res := ElasticResult{Name: sc.Name}

	vc := clock.NewVirtual(sc.Start)
	lc, err := NewLocalCluster(sc.InitialServers, Config{
		Clock:             vc,
		ReplicationFactor: sc.ReplicationFactor,
		SLA:               sc.SLA,
	})
	if err != nil {
		return res, err
	}
	defer lc.Close()
	if err := lc.DefineSchema(elasticDDL); err != nil {
		return res, err
	}

	// Seed the keyspace and split it so scale events move real ranges.
	for i := 0; i < sc.Keys.Users; i++ {
		if err := lc.Insert("users", Row{
			"id":       workload.UserID(i),
			"name":     "seed",
			"birthday": int64(i%365 + 1),
		}); err != nil {
			return res, err
		}
	}
	if err := lc.FlushAll(); err != nil {
		return res, err
	}
	q := sc.Keys.Users / 4
	if err := lc.SplitTable("users",
		workload.UserID(q), workload.UserID(2*q), workload.UserID(3*q)); err != nil {
		return res, err
	}
	if err := lc.SpreadAll(); err != nil {
		return res, err
	}

	var (
		actMu   sync.Mutex
		actErrs []error
	)
	base := NewElasticActuator(lc)
	base.OnError = func(err error) {
		actMu.Lock()
		actErrs = append(actErrs, err)
		actMu.Unlock()
	}
	act := &bootDelayActuator{clk: vc, delay: sc.BootDelay, inner: base}

	classes := sla.NewClasses(vc, sc.SLA, 1024)
	d := director.New(vc, act, director.Config{
		SLALatency:      sc.SLA.LatencyBound,
		ForecastHorizon: sc.BootDelay + 2*sc.Tick,
		MinServers:      sc.MinServers,
		MaxServers:      sc.MaxServers,
		Policy:          director.ModelDriven,
	})
	warmElasticModels(d, sc)

	// Two real-op drivers share a last-acked ledger: a synchronous
	// per-tick driver guarantees coverage of every control interval,
	// and a concurrent wall-clock writer keeps ops in flight *during*
	// the migrations scale events trigger. Each owns one key parity
	// (sync even, concurrent odd), so last-acked-per-key stays well
	// defined without cross-goroutine write ordering.
	type ledger struct {
		mu    sync.Mutex
		last  map[string]string // key id → last acked value
		acked int64
	}
	led := &ledger{last: make(map[string]string)}
	doOp := func(rnd *rand.Rand, round int64, parity int) {
		k := sc.Keys.Key(rnd, vc.Now())&^1 | parity
		if k >= sc.Keys.Users {
			k = parity
		}
		id := workload.UserID(k)
		if rnd.Float64() < 0.5 {
			name := fmt.Sprintf("w%d-%d", parity, round)
			err := lc.Insert("users", Row{
				"id":       id,
				"name":     name,
				"birthday": int64(round%365 + 1),
			})
			if err == nil {
				led.mu.Lock()
				led.last[id] = name
				led.acked++
				led.mu.Unlock()
			}
		} else {
			lc.Get("users", Row{"id": id}) // exercise routing under migration
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(sc.Seed))
		var round int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			round++
			doOp(rnd, round, 1)
			runtime.Gosched()
		}
	}()
	syncRnd := rand.New(rand.NewSource(sc.Seed + 1))
	var syncRound int64

	end := sc.Start.Add(sc.Duration)
	for vc.Now().Before(end) {
		// Release matured boots, then let adds/spreads settle so the
		// fleet size this tick is deterministic.
		act.Poll()
		base.Wait()
		running := base.Running()
		if running > res.PeakServers {
			res.PeakServers = running
		}
		for i := 0; i < sc.OpsPerTick; i++ {
			syncRound++
			doOp(syncRnd, syncRound, 0)
		}

		total := sc.Trace.Rate(vc.Now())
		classRates := map[string]float64{
			"read":  total * (1 - sc.WriteFraction),
			"write": total * sc.WriteFraction,
		}
		lat := sc.Service.Latency(classRates, running)
		succ := sc.Service.SuccessRate(classRates, running)
		for class, r := range classRates {
			n := int64(r * sc.Tick.Seconds())
			if n <= 0 {
				continue
			}
			ok := int64(float64(n) * succ / 100)
			classes.RecordBatch(class, ok, lat, true)
			classes.RecordBatch(class, n-ok, lat, false)
		}
		res.ServerHours += float64(running) * sc.Tick.Hours()

		vc.Advance(sc.Tick)
		up := classes.Roll()
		if !up.Met {
			res.SLOViolationMinutes += sc.Tick.Minutes()
		}
		dec := d.Step(director.Observation{
			Rate:             up.Rate,
			ClassRates:       up.ClassRates,
			Latency:          up.Latency,
			SuccessRate:      up.SuccessRate,
			SLAMet:           up.Met,
			CommittedServers: sc.ReplicationFactor,
		})
		if dec.Added > 0 {
			res.ScaleUps++
			res.NodesAdded += dec.Added
		}
		if dec.Removed > 0 {
			res.ScaleDowns++
			res.NodesRemoved += dec.Removed
		}
		res.Ticks++
	}

	close(stop)
	wg.Wait()
	act.Poll()
	base.Wait()
	res.FinalServers = base.Running()
	res.CostUSD = res.ServerHours * sc.PricePerHour

	// Verify the ledger: every acked write must read back its last
	// acked value after replication drains.
	if err := lc.FlushAll(); err != nil {
		return res, err
	}
	led.mu.Lock()
	res.AckedWrites = led.acked
	for id, want := range led.last {
		r, found, err := lc.Get("users", Row{"id": id})
		if err != nil || !found {
			res.LostWrites++
			continue
		}
		if r["name"] != want {
			res.CorruptReads++
		}
	}
	led.mu.Unlock()

	actMu.Lock()
	defer actMu.Unlock()
	return res, errors.Join(actErrs...)
}

// ElasticDiurnalScenario is the daily cycle: demand triples from
// morning trough to afternoon peak and the fleet must follow it up
// and back down. Starts at 8am so the run rides the rising edge
// through the peak into the evening decline.
func ElasticDiurnalScenario() ElasticScenario {
	start := time.Date(2009, 1, 4, 8, 0, 0, 0, time.UTC)
	return ElasticScenario{
		Name:           "diurnal",
		Seed:           1,
		Start:          start,
		Duration:       12 * time.Hour,
		Trace:          workload.Diurnal{Base: 900, Amplitude: 600},
		Keys:           workload.Hotspot{Users: 240, Start: start},
		InitialServers: 4,
	}
}

// ElasticFlashCrowdScenario is the paper's day-after-Halloween spike:
// a 5× surge over ten minutes, an hour at the top, then decay. The
// director must ride it up fast enough to bound SLO-violation minutes
// and come back down after.
func ElasticFlashCrowdScenario() ElasticScenario {
	start := time.Date(2009, 1, 4, 8, 0, 0, 0, time.UTC)
	return ElasticScenario{
		Name:     "flash-crowd",
		Seed:     2,
		Start:    start,
		Duration: 6 * time.Hour,
		Trace: workload.Spike{
			Baseline:  workload.Constant(600),
			At:        start.Add(2 * time.Hour),
			Rise:      10 * time.Minute,
			Duration:  time.Hour,
			Magnitude: 5,
		},
		Keys:           workload.Hotspot{Users: 240, Start: start},
		InitialServers: 3,
	}
}

// ElasticHotspotShiftScenario keeps the aggregate rate on a mild ramp
// while the hot tenth of the keyspace advances every 45 minutes — the
// writer's load keeps landing on different ranges as scale events
// migrate them, which is exactly the window in which a lossy
// migration would drop acked writes.
func ElasticHotspotShiftScenario() ElasticScenario {
	start := time.Date(2009, 1, 4, 8, 0, 0, 0, time.UTC)
	return ElasticScenario{
		Name:     "hotspot-shift",
		Seed:     3,
		Start:    start,
		Duration: 6 * time.Hour,
		Trace:    workload.Diurnal{Base: 800, Amplitude: 500},
		Keys: workload.Hotspot{
			Users:       240,
			ShiftPeriod: 45 * time.Minute,
			Start:       start,
		},
		InitialServers: 4,
	}
}
