package scads_test

import (
	"fmt"
	"log"
	"time"

	"scads"
	"scads/internal/analyzer"
)

// Example shows the minimal end-to-end flow: declare a schema and a
// consistency spec, write rows, and run a declared query.
func Example() {
	cluster, err := scads.NewLocalCluster(3, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if err := cluster.DefineSchema(`
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1
`); err != nil {
		log.Fatal(err)
	}
	if err := cluster.ApplyConsistency(`
namespace users {
  write: last-write-wins;
  staleness: 30s;
}
`); err != nil {
		log.Fatal(err)
	}

	if err := cluster.Insert("users", scads.Row{"id": "bob", "name": "Bob", "birthday": 42}); err != nil {
		log.Fatal(err)
	}
	if err := cluster.FlushAll(); err != nil { // drain async replication
		log.Fatal(err)
	}

	rows, err := cluster.Query("findUser", map[string]any{"user": "bob"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows[0]["name"], rows[0]["birthday"])
	// Output: Bob 42
}

// ExampleCluster_DefineSchema shows the analyzer rejecting a query
// whose maintenance work is unbounded — the paper's Twitter case.
func ExampleCluster_DefineSchema() {
	cluster, err := scads.NewLocalCluster(1, scads.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.DefineSchema(`
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows ( follower string, followee string, PRIMARY KEY (follower, followee) )
QUERY followersOf
SELECT u.* FROM follows f JOIN users u ON f.follower = u.id
WHERE f.followee = ?user LIMIT 100
`)
	fmt.Println(err != nil)
	// Output: true
}

// ExampleCluster_GetSession shows read-your-writes: the session always
// observes its own write even while replication is still in flight.
func ExampleCluster_GetSession() {
	cluster, err := scads.NewLocalCluster(2, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DefineSchema(`
ENTITY walls ( owner string PRIMARY KEY, post string )
QUERY wall SELECT * FROM walls WHERE owner = ?owner LIMIT 1
`); err != nil {
		log.Fatal(err)
	}
	if err := cluster.ApplyConsistency(`
namespace walls { session: read-your-writes; }
`); err != nil {
		log.Fatal(err)
	}

	sess := cluster.NewSession("walls")
	if err := cluster.InsertSession("walls", scads.Row{"owner": "alice", "post": "hi!"}, sess); err != nil {
		log.Fatal(err)
	}
	// No FlushAll: one replica is still stale, but the session's floor
	// forces the read onto a replica that has the write.
	r, found, err := cluster.GetSession("walls", scads.Row{"owner": "alice"}, sess)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(found, r["post"])
	// Output: true hi!
}

// ExampleAdviseDDL shows the pre-deployment guidance flow of
// §2.2/§3.3.1: templates plus a workload estimate go in, and the
// report says what is scale-independent and what it will cost.
func ExampleAdviseDDL() {
	report, err := scads.AdviseDDL(`
ENTITY users ( id string PRIMARY KEY, name string )
QUERY getUser
SELECT * FROM users WHERE id = ?u LIMIT 1
`, analyzer.Config{}, scads.AdviceWorkload{
		QueryRates:  map[string]float64{"getUser": 1000},
		UpdateRates: map[string]float64{"users": 10},
		TableRows:   map[string]int{"users": 100_000},
	}, scads.AdviceConfig{
		Capacity: scads.AnalyticCapacity{
			PerServer: 1000, Base: 5 * time.Millisecond, K: 30 * time.Millisecond,
		},
	})
	if err != nil {
		panic(err)
	}
	q := report.Queries[0]
	fmt.Printf("%s: accepted=%v shape=%s servers-touched=%d\n",
		q.Query, q.Accepted, q.Shape, q.ServersTouched)
	fmt.Printf("replication choices explored: %d\n", len(report.Curve))
	// Output:
	// getUser: accepted=true shape=pk-lookup servers-touched=1
	// replication choices explored: 5
}

// ExampleCluster_Rebalance shows workload-driven repartitioning: the
// coordinator tracks where requests land and Rebalance splits/moves
// ranges accordingly.
func ExampleCluster_Rebalance() {
	lc, err := scads.NewLocalCluster(2, scads.Config{})
	if err != nil {
		panic(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(`
ENTITY items ( id string PRIMARY KEY, name string )
QUERY getItem
SELECT * FROM items WHERE id = ?id LIMIT 1
`); err != nil {
		panic(err)
	}
	for i := 0; i < 50; i++ {
		lc.Insert("items", scads.Row{"id": fmt.Sprintf("item%03d", i), "name": "x"})
	}
	for i := 0; i < 300; i++ {
		lc.Get("items", scads.Row{"id": fmt.Sprintf("item%03d", i%50)})
	}
	plan, err := lc.Rebalance(scads.BalanceConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("actions executed: %d\n", len(plan))
	// Output:
	// actions executed: 1
}
