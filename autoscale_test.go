package scads

import (
	"testing"
	"time"

	"scads/internal/workload"
)

// shortElasticScenario compresses the flash-crowd shape into a
// 150-minute run with a shifting hotspot, so unit tests exercise both
// scale directions and writer-vs-migration interleaving quickly.
func shortElasticScenario() ElasticScenario {
	start := time.Date(2009, 1, 4, 8, 0, 0, 0, time.UTC)
	return ElasticScenario{
		Name:     "short-spike",
		Seed:     42,
		Start:    start,
		Duration: 150 * time.Minute,
		Tick:     time.Minute,
		Trace: workload.Spike{
			Baseline:  workload.Constant(500),
			At:        start.Add(25 * time.Minute),
			Rise:      10 * time.Minute,
			Duration:  30 * time.Minute,
			Magnitude: 4,
		},
		Keys:           workload.Hotspot{Users: 120, ShiftPeriod: 20 * time.Minute, Start: start},
		InitialServers: 3,
	}
}

// TestElasticScenarioEndToEnd runs the full loop — trace → per-class
// SLO telemetry → fleet-model director → real node adds/decommissions
// — under a concurrent writer, and checks the paper's core claims:
// capacity follows the surge up and back down, and no acked write is
// lost or corrupted across any scale event.
func TestElasticScenarioEndToEnd(t *testing.T) {
	res, err := RunElasticScenario(shortElasticScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != 150 {
		t.Fatalf("Ticks = %d, want 150", res.Ticks)
	}
	if res.ScaleUps == 0 || res.PeakServers <= 3 {
		t.Fatalf("surge did not scale up: %+v", res)
	}
	if res.ScaleDowns == 0 || res.FinalServers >= res.PeakServers {
		t.Fatalf("decay did not scale down: %+v", res)
	}
	if res.AckedWrites < 300 {
		t.Fatalf("only %d acked writes — the run proved too little", res.AckedWrites)
	}
	if res.LostWrites != 0 || res.CorruptReads != 0 {
		t.Fatalf("lossless migration violated: %d lost, %d corrupt of %d acked",
			res.LostWrites, res.CorruptReads, res.AckedWrites)
	}
	if res.ServerHours <= 0 || res.CostUSD <= 0 {
		t.Fatalf("accounting empty: %+v", res)
	}
}

// TestElasticScenarioDeterministicMetrics runs the same scenario
// twice: every control-plane metric must match bit for bit — that is
// what makes the e16 baselines gateable in CI. (Ledger counts are
// wall-clock dependent and excluded; their zero-ness is checked
// above.)
func TestElasticScenarioDeterministicMetrics(t *testing.T) {
	sc := shortElasticScenario()
	a, err := RunElasticScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunElasticScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	a.AckedWrites, b.AckedWrites = 0, 0
	if a != b {
		t.Fatalf("metrics not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}
