// Package scads is a from-scratch reproduction of SCADS — Scalable
// Consistency Adjustable Data Storage (Armbrust et al., CIDR 2009):
// scale-independent storage for social computing applications.
//
// A Cluster fronts a set of storage nodes (real TCP daemons or
// in-process simulated nodes) and provides the paper's three
// innovations:
//
//   - a performance-safe query language: entities and query templates
//     are declared ahead of time in scadsQL (DefineSchema); each query
//     is either proven to be a bounded contiguous index lookup with
//     O(K) maintenance work or rejected before it can ever run;
//   - declarative consistency: per-namespace specs (ApplyConsistency)
//     choose the write-conflict mode, staleness bound, session
//     guarantees, durability target, and the priority order used when
//     requirements contend;
//   - scale-up/scale-down machinery: the SLA monitor, performance
//     models and director (internal/director) grow and shrink the
//     cluster to meet the declared SLA at minimum cost.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every figure in the paper.
package scads

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"scads/internal/admission"
	"scads/internal/analyzer"
	"scads/internal/balancer"
	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/consistency"
	"scads/internal/migration"
	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/repair"
	"scads/internal/replication"
	"scads/internal/row"
	"scads/internal/rpc"
	"scads/internal/session"
	"scads/internal/sla"
	"scads/internal/storage"
	"scads/internal/view"
)

// Config configures a Cluster.
type Config struct {
	// Clock drives timestamps, staleness accounting and SLA windows.
	// Default: the real clock.
	Clock clock.Clock
	// Transport reaches storage nodes. Required.
	Transport rpc.Transport
	// Directory tracks node membership. Required.
	Directory *cluster.Directory
	// ReplicationFactor is the number of replicas per range (default 1).
	ReplicationFactor int
	// DefaultStaleness bounds replication lag for namespaces whose
	// spec does not declare one (default 30s).
	DefaultStaleness time.Duration
	// Analyzer bounds what queries are accepted.
	Analyzer analyzer.Config
	// ReplicationOrder selects the queue discipline (ByDeadline is
	// the paper's design; FIFO exists for the E8 ablation).
	ReplicationOrder replication.Order
	// CoordinatorID disambiguates version stamps from this
	// coordinator (16 bits).
	CoordinatorID uint16
	// SLA is the performance SLA the cluster-wide monitor checks.
	SLA consistency.PerformanceSLA
	// DisableBatching turns off transparent request coalescing. By
	// default the coordinator wraps Transport in an rpc.Batcher, so
	// concurrent requests to the same node share one round-trip
	// (sequential requests pass through unwrapped and unchanged).
	DisableBatching bool
	// NodeStorage configures the storage engines of in-process nodes
	// created by LocalCluster (read-cache size, synchronous writes,
	// data directory, ...). Clock and NodeID are filled in per node.
	// Ignored for clusters over remote nodes.
	NodeStorage storage.Options
	// MigrationParallelism bounds how many range migrations run
	// concurrently (default 4). Spreads and decommissions queue their
	// per-range migrations against this bound.
	MigrationParallelism int
	// ScanParallelism bounds how many per-range sub-scans one query
	// fans out concurrently in the scatter-gather scan pipeline
	// (default partition.DefaultScanParallelism). 1 makes scans visit
	// overlapping ranges sequentially — the ablation baseline the
	// scan benchmark compares against.
	ScanParallelism int
	// Repair tunes the self-healing crash-recovery loop (failure
	// detector, primary failover, replication-factor repair). The loop
	// runs whenever StartBackground is active unless Repair.Disabled;
	// RepairNow drives one sweep synchronously for deterministic tests
	// and operator tooling.
	Repair repair.Config
	// Admission configures the front-door admission controller:
	// per-tenant token-bucket quotas, priority-aware overload
	// shedding, and hot-tenant detection. The zero value admits
	// everything (no quotas, no in-flight watermark), so existing
	// single-tenant deployments are unaffected. Admission.Clock is
	// overridden with the cluster Clock.
	Admission admission.Config
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = clock.NewReal()
	}
	if c.ReplicationFactor < 1 {
		c.ReplicationFactor = 1
	}
	if c.DefaultStaleness <= 0 {
		c.DefaultStaleness = 30 * time.Second
	}
	if c.SLA.Zero() {
		c.SLA = consistency.PerformanceSLA{
			Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.99,
		}
	}
	return c
}

// Errors surfaced by the public API.
var (
	ErrNoSchema      = errors.New("scads: no schema defined")
	ErrUnknownTable  = errors.New("scads: unknown table")
	ErrUnknownQuery  = errors.New("scads: unknown query")
	ErrStaleReplicas = errors.New("scads: staleness bound unsatisfiable and read-consistency prioritised over availability")
)

// Cluster is the client- and coordinator-side handle on a SCADS
// deployment. Safe for concurrent use.
type Cluster struct {
	cfg        Config
	clk        clock.Clock
	router     *partition.Router
	dir        *cluster.Directory
	pump       *replication.Pump
	batcher    *rpc.Batcher // nil when batching disabled
	migrations *migration.Manager
	repairs    *repair.Manager

	merges     *consistency.MergeRegistry
	serializer *consistency.Serializer
	monitor    *sla.Monitor
	contention contentionLog

	rowMergeMu sync.RWMutex
	rowMerges  map[string]RowMergeFunc

	loads     *balancer.Tracker
	admission *admission.Controller

	lastVersion atomic.Uint64
	readRR      atomic.Uint64
	// lastObservedContention is the contention total already reported
	// through Observe, so each observation carries only the delta.
	lastObservedContention atomic.Int64

	mu       sync.RWMutex
	schema   *query.Schema
	analysis map[string]*analyzer.Result
	plans    *planner.Output
	views    *view.Engine
	specs    map[string]consistency.Spec // table name -> spec
	maint    *maintQueue
	closed   bool

	bgMu   sync.Mutex
	bgStop chan struct{}
	bgDone sync.WaitGroup
}

// Open creates a Cluster over the given transport and directory. Nodes
// must already be registered in the directory (see AddNode); schema
// and consistency specs are installed afterwards.
func Open(cfg Config) (*Cluster, error) {
	if cfg.Transport == nil || cfg.Directory == nil {
		return nil, errors.New("scads: Config needs Transport and Directory")
	}
	cfg = cfg.withDefaults()
	// The router's transport is the request-coalescing seam: every
	// hot-path read, write, and replication apply below this point
	// shares round-trips with whatever else is in flight to the same
	// node.
	transport := cfg.Transport
	var batcher *rpc.Batcher
	if !cfg.DisableBatching {
		batcher = rpc.NewBatcher(transport)
		transport = batcher
	}
	c := &Cluster{
		cfg:        cfg,
		clk:        cfg.Clock,
		dir:        cfg.Directory,
		batcher:    batcher,
		router:     partition.NewRouter(transport, cfg.Directory),
		merges:     consistency.NewMergeRegistry(),
		serializer: consistency.NewSerializer(1024),
		monitor:    sla.NewMonitor(cfg.Clock, cfg.SLA, 0),
		specs:      make(map[string]consistency.Spec),
		maint:      newMaintQueue(),
		loads:      balancer.NewTracker(),
	}
	admCfg := cfg.Admission
	admCfg.Clock = cfg.Clock
	c.admission = admission.New(admCfg)
	if cfg.ScanParallelism > 0 {
		c.router.SetScanParallelism(cfg.ScanParallelism)
	}
	// Online range migrations share the (possibly batching) transport
	// with the router; MigrationParallelism bounds how many ranges move
	// concurrently during spreads and decommissions. The router's maps
	// back the manager's ownership checks, so a journaled teardown can
	// never truncate a range its node has since regained.
	c.migrations = migration.NewManager(transport, cfg.Directory, cfg.MigrationParallelism)
	c.migrations.Resolver = c.router.Map
	queue := replication.NewQueue(cfg.ReplicationOrder)
	c.pump = replication.NewPump(queue, c.router.Apply, cfg.Clock)
	// Flip-time rebind: while the donor's fence is still held, clone
	// any replication update the fenced drain provably could not have
	// shipped (still queued/parked/in-flight at this coordinator) to
	// the replicas the flip added. Without this, a write acknowledged
	// before a migration could permanently miss the range's new
	// members — and surface as data loss after a later failover onto
	// one of them.
	c.migrations.OnFlip = func(ns string, start, end []byte, old, target []string) {
		var added []string
		for _, id := range target {
			found := false
			for _, o := range old {
				if o == id {
					found = true
					break
				}
			}
			if !found {
				added = append(added, id)
			}
		}
		if len(added) > 0 {
			c.pump.Rebind(ns, start, end, added)
		}
	}
	// The self-healing loop: failure detection driving
	// Directory.ExpireStale, primary failover, and RF repair through
	// the migration manager. Runs under StartBackground; Sweep/
	// RepairNow drives it deterministically.
	c.repairs = repair.NewManager(cfg.Repair, cfg.Clock, cfg.Directory, transport,
		c.router, c.migrations, c.pump, cfg.ReplicationFactor)
	return c, nil
}

// Close marks the cluster closed and stops background pumps.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.StopBackground()
	c.pump.Stop()
	return nil
}

// StartBackground launches replication workers and a maintenance
// drainer so index updates and replica propagation proceed without the
// caller driving DrainMaintenance/FlushAll. Intended for real (wall
// clock) deployments; simulations and deterministic tests drive the
// queues explicitly instead. Safe to call once; Close stops it.
func (c *Cluster) StartBackground(replicationWorkers int) {
	c.bgMu.Lock()
	defer c.bgMu.Unlock()
	if c.bgStop != nil {
		return
	}
	stop := make(chan struct{})
	c.bgStop = stop
	if replicationWorkers < 1 {
		replicationWorkers = 2
	}
	c.pump.Run(replicationWorkers)
	if !c.cfg.Repair.Disabled {
		c.repairs.Run()
	}
	c.bgDone.Add(1)
	go func() {
		defer c.bgDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n, err := c.DrainMaintenance(256)
			if err != nil || n == 0 {
				select {
				case <-stop:
					return
				case <-c.clk.After(2 * time.Millisecond):
				}
			}
		}
	}()
}

// StopBackground halts goroutines started by StartBackground.
func (c *Cluster) StopBackground() {
	c.bgMu.Lock()
	if c.bgStop == nil {
		c.bgMu.Unlock()
		return
	}
	close(c.bgStop)
	c.bgStop = nil
	c.bgMu.Unlock()
	c.repairs.Stop()
	c.bgDone.Wait()
}

// Router exposes the partition router (operational tooling).
func (c *Cluster) Router() *partition.Router { return c.router }

// Directory exposes cluster membership.
func (c *Cluster) Directory() *cluster.Directory { return c.dir }

// Pump exposes the replication pump (metrics, draining in tests and
// simulations).
func (c *Cluster) Pump() *replication.Pump { return c.pump }

// Migrations exposes the online range-migration manager (tuning,
// progress events, pending-cleanup retries).
func (c *Cluster) Migrations() *migration.Manager { return c.migrations }

// MigrationStats returns a snapshot of range-migration counters.
func (c *Cluster) MigrationStats() migration.Stats { return c.migrations.Stats() }

// Repairs exposes the self-healing repair manager (phase events,
// tuning, deterministic sweeps in tests).
func (c *Cluster) Repairs() *repair.Manager { return c.repairs }

// RepairStats returns a snapshot of crash-recovery counters: observed
// membership transitions, primary failovers, demotions of stale
// returned replicas, and RF-repair job outcomes.
func (c *Cluster) RepairStats() repair.Stats { return c.repairs.Stats() }

// RepairNow runs one synchronous failure-detection + failover + repair
// sweep (re-replication jobs it schedules still run asynchronously;
// Repairs().Quiesce waits for those).
func (c *Cluster) RepairNow() { c.repairs.Sweep() }

// Monitor exposes the SLA monitor.
func (c *Cluster) Monitor() *sla.Monitor { return c.monitor }

// Admission exposes the front-door admission controller (tenant
// configuration, stats, hot-tenant queries).
func (c *Cluster) Admission() *admission.Controller { return c.admission }

// SetTenant installs or replaces a tenant's admission quota and
// priority class at runtime.
func (c *Cluster) SetTenant(name string, cfg admission.TenantConfig) {
	c.admission.SetTenant(name, cfg)
}

// HotTenants reports tenants whose sustained demand rate dominates the
// mean — the rebalancing signal for skew the front door would
// otherwise shed forever.
func (c *Cluster) HotTenants() []admission.TenantDemand {
	return c.admission.HotTenants()
}

// admit gates one front-door operation through the admission
// controller. The returned release must be called when the operation
// finishes (it closes the in-flight accounting overload shedding
// watches); on rejection the error wraps rpc.ErrOverloaded with a
// retry-after hint and release is a no-op.
func (c *Cluster) admit(tenant string, op admission.Op, cost float64) (func(), error) {
	release, err := c.admission.Admit(tenant, op, cost)
	if err != nil {
		return func() {}, err
	}
	return release, nil
}

// Clock exposes the cluster's time source.
func (c *Cluster) Clock() clock.Clock { return c.clk }

// RegisterMerge binds a named merge function usable in consistency
// specs (write: merge(name)). The function is applied column-wise to
// conflicting string columns; use RegisterRowMerge to resolve whole
// rows instead.
func (c *Cluster) RegisterMerge(name string, fn consistency.MergeFunc) {
	c.merges.Register(name, fn)
}

// RowMergeFunc resolves a write conflict at row granularity: current
// is the stored row, incoming the new write. Returning nil keeps the
// incoming row. Both arguments are clones; mutating them is safe.
type RowMergeFunc func(current, incoming Row) Row

// RegisterRowMerge binds a named row-level merge function usable in
// consistency specs (write: merge(name)). Row-level merges take
// precedence over a byte-level function registered under the same
// name.
func (c *Cluster) RegisterRowMerge(name string, fn RowMergeFunc) {
	c.rowMergeMu.Lock()
	defer c.rowMergeMu.Unlock()
	if c.rowMerges == nil {
		c.rowMerges = make(map[string]RowMergeFunc)
	}
	c.rowMerges[name] = fn
}

func (c *Cluster) lookupRowMerge(name string) (RowMergeFunc, bool) {
	c.rowMergeMu.RLock()
	defer c.rowMergeMu.RUnlock()
	fn, ok := c.rowMerges[name]
	return fn, ok
}

// NewSession opens a client session with the guarantee level declared
// for the given table's namespace (SessionNone when unspecified).
func (c *Cluster) NewSession(table string) *session.Session {
	c.mu.RLock()
	spec := c.specs[table]
	c.mu.RUnlock()
	return session.New(spec.Session)
}

// nextVersion is the coordinator's hybrid logical clock.
func (c *Cluster) nextVersion() uint64 {
	for {
		now := uint64(c.clk.Now().UnixNano()) << 16
		candidate := now | uint64(c.cfg.CoordinatorID)
		last := c.lastVersion.Load()
		if candidate <= last {
			candidate = (last + 1<<16) | uint64(c.cfg.CoordinatorID)
		}
		if c.lastVersion.CompareAndSwap(last, candidate) {
			return candidate
		}
	}
}

// specFor returns the consistency spec governing a table (zero spec
// with defaults when none was declared).
func (c *Cluster) specFor(table string) consistency.Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.specs[table]
}

// stalenessBound returns the declared staleness bound for a table.
func (c *Cluster) stalenessBound(table string) time.Duration {
	if s := c.specFor(table).Staleness; s > 0 {
		return s
	}
	return c.cfg.DefaultStaleness
}

// record wraps an operation with SLA accounting.
func (c *Cluster) record(start time.Time, err error) {
	c.monitor.Record(c.clk.Since(start), err == nil)
}

// Stats summarises coordinator state.
type Stats struct {
	Replication replication.Stats
	Maintenance int // pending asynchronous index-maintenance tasks
	SLA         sla.Summary
	Batching    rpc.BatcherStats // request coalescing (zero when disabled)
	Migration   migration.Stats  // online range-migration activity
	Repair      repair.Stats     // self-healing crash-recovery activity
	Admission   admission.Stats  // front-door quotas / overload shedding
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Replication: c.pump.Stats(),
		Maintenance: c.maint.Len(),
		SLA:         c.monitor.Summary(),
		Migration:   c.migrations.Stats(),
		Repair:      c.repairs.Stats(),
		Admission:   c.admission.Stats(),
	}
	if c.batcher != nil {
		s.Batching = c.batcher.Stats()
	}
	return s
}

// Row is the public alias for a typed tuple.
type Row = row.Row
