package scads

import (
	"fmt"

	"scads/internal/analyzer"
	"scads/internal/consistency"
	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/row"
	"scads/internal/view"
)

// DefineSchema parses a scadsQL program (ENTITY and QUERY statements),
// runs the scale-independence analysis, compiles plans and index
// definitions, and creates the partition maps for every table and
// index namespace across the currently serving nodes.
//
// The entire program is rejected if any query fails analysis — "a
// query that is not a lookup in a pre-computed index will be rejected
// by SCADS" (§3.2).
func (c *Cluster) DefineSchema(ddl string) error {
	schema, err := query.Parse(ddl)
	if err != nil {
		return err
	}
	results, err := analyzer.Analyze(schema, c.cfg.Analyzer)
	if err != nil {
		return fmt.Errorf("scads: schema rejected: %w", err)
	}
	plans, err := planner.Compile(schema, results)
	if err != nil {
		return err
	}

	// One partition map per namespace, each replica group drawn
	// round-robin from the serving nodes.
	up := c.dir.Up()
	if len(up) == 0 {
		return fmt.Errorf("scads: no serving nodes to place namespaces on")
	}
	nodeIDs := make([]string, len(up))
	for i, m := range up {
		nodeIDs[i] = m.ID
	}
	namespaces := make([]string, 0, len(schema.TableOrder)+len(plans.Indexes))
	for _, t := range schema.TableOrder {
		namespaces = append(namespaces, planner.TableNamespace(t))
	}
	for _, def := range plans.Indexes {
		namespaces = append(namespaces, def.Namespace)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	rf := c.cfg.ReplicationFactor
	if rf > len(nodeIDs) {
		rf = len(nodeIDs)
	}
	for i, ns := range namespaces {
		if _, exists := c.router.Map(ns); exists {
			continue
		}
		replicas := make([]string, rf)
		for j := 0; j < rf; j++ {
			replicas[j] = nodeIDs[(i+j)%len(nodeIDs)]
		}
		m, err := partition.NewMap(replicas)
		if err != nil {
			return err
		}
		c.router.SetMap(ns, m)
	}

	c.schema = schema
	c.analysis = results
	c.plans = plans
	c.views = view.NewEngine(schema, plans.Indexes, &coordStore{c})
	return nil
}

// ApplyConsistency parses the declarative consistency DSL and binds
// each spec to its namespace (which must name a declared entity).
// Merge functions referenced by merge(...) clauses must already be
// registered.
func (c *Cluster) ApplyConsistency(src string) error {
	specs, err := consistency.Parse(src)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.schema == nil {
		return ErrNoSchema
	}
	for _, spec := range specs {
		if _, ok := c.schema.Tables[spec.Namespace]; !ok {
			return fmt.Errorf("%w: consistency spec names %q", ErrUnknownTable, spec.Namespace)
		}
		if spec.Write == consistency.MergeFunction {
			if _, ok := c.lookupRowMerge(spec.MergeName); !ok {
				if _, err := c.merges.Lookup(spec.MergeName); err != nil {
					return err
				}
			}
		}
		c.specs[spec.Namespace] = spec
	}
	return nil
}

// Specs returns the bound consistency specs by table name.
func (c *Cluster) Specs() map[string]consistency.Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]consistency.Spec, len(c.specs))
	for k, v := range c.specs {
		out[k] = v
	}
	return out
}

// Schema returns the parsed schema (nil before DefineSchema).
func (c *Cluster) Schema() *query.Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schema
}

// MaintenanceTable returns the compiled Figure 3 table: which index to
// update when a table's field changes.
func (c *Cluster) MaintenanceTable() []planner.MaintenanceEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.plans == nil {
		return nil
	}
	return append([]planner.MaintenanceEntry(nil), c.plans.Maintenance...)
}

// FormatMaintenanceTable renders the Figure 3 table as text.
func (c *Cluster) FormatMaintenanceTable() string {
	return planner.FormatMaintenanceTable(c.MaintenanceTable())
}

// Plan returns the compiled physical plan for a query (nil if
// unknown).
func (c *Cluster) Plan(queryName string) *planner.Plan {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.plans == nil {
		return nil
	}
	return c.plans.Plans[queryName]
}

// Analysis returns the analyzer's proof object for a query.
func (c *Cluster) Analysis(queryName string) *analyzer.Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.analysis == nil {
		return nil
	}
	return c.analysis[queryName]
}

// SplitTable splits the partition map of a table namespace (and every
// index namespace derived from it) at the encoded primary-key values
// given — a building block for rebalancing and the scale-independence
// experiments. Values are single-column PK prefixes.
func (c *Cluster) SplitTable(table string, values ...any) error {
	c.mu.RLock()
	schema := c.schema
	c.mu.RUnlock()
	if schema == nil {
		return ErrNoSchema
	}
	if _, ok := schema.Tables[table]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	ns := planner.TableNamespace(table)
	m, ok := c.router.Map(ns)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", ns)
	}
	for _, v := range values {
		key, err := row.EncodeKey(row.Row{"_": row.Normalize(v)}, []string{"_"})
		if err != nil {
			return err
		}
		if err := m.Split(key); err != nil {
			return fmt.Errorf("scads: split %s at %v: %w", table, v, err)
		}
	}
	return nil
}

// AssignRange reassigns the replica group of the range containing the
// encoded value in a table namespace.
func (c *Cluster) AssignRange(table string, value any, replicas []string) error {
	ns := planner.TableNamespace(table)
	m, ok := c.router.Map(ns)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", ns)
	}
	key, err := row.EncodeKey(row.Row{"_": row.Normalize(value)}, []string{"_"})
	if err != nil {
		return err
	}
	return m.SetReplicas(key, replicas)
}

// coordStore adapts the router into the view engine's Store: reads go
// to primaries so maintenance always sees the freshest base data.
type coordStore struct{ c *Cluster }

func (s *coordStore) GetRow(namespace string, key []byte) (row.Row, bool, error) {
	val, _, found, err := s.c.router.Get(namespace, key, partition.ReadPrimary)
	if err != nil || !found {
		return nil, false, err
	}
	r, err := row.Decode(val)
	if err != nil {
		return nil, false, err
	}
	return r, true, nil
}

func (s *coordStore) ScanRows(namespace string, start, end []byte, limit int) ([]row.Row, error) {
	recs, err := s.c.router.Scan(namespace, start, end, limit, partition.ReadPrimary)
	if err != nil {
		return nil, err
	}
	out := make([]row.Row, 0, len(recs))
	for _, rec := range recs {
		r, err := row.Decode(rec.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
