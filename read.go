package scads

import (
	"bytes"
	"fmt"
	"time"

	"scads/internal/admission"
	"scads/internal/consistency"
	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/row"
	"scads/internal/rpc"
	"scads/internal/session"
)

// Get reads one row by primary key with the table's declared
// consistency (no session guarantees).
func (c *Cluster) Get(table string, pk row.Row) (row.Row, bool, error) {
	return c.GetSession(table, pk, nil)
}

// GetSession reads one row by primary key, honouring the session's
// guarantees (read-your-writes / monotonic reads) and the namespace's
// staleness bound. Replicas whose pending replication exceeds the
// bound are skipped; if that leaves no acceptable replica, the
// namespace's declared priority order decides between serving stale
// data (availability first) and failing the read (read-consistency
// first) — exactly the §3.3.1 contention example.
func (c *Cluster) GetSession(table string, pk row.Row, sess *session.Session) (row.Row, bool, error) {
	start := c.clk.Now()
	r, found, err := c.getSession(table, pk, sess)
	c.record(start, err)
	return r, found, err
}

func (c *Cluster) getSession(table string, pk row.Row, sess *session.Session) (row.Row, bool, error) {
	t, err := c.tableDef(table)
	if err != nil {
		return nil, false, err
	}
	key, err := pkKey(t, pk)
	if err != nil {
		return nil, false, err
	}
	ns := planner.TableNamespace(table)
	m, ok := c.router.Map(ns)
	if !ok {
		return nil, false, fmt.Errorf("scads: no partition map for %s", ns)
	}
	rng := m.Lookup(key)
	// Load is recorded before admission so shed demand stays visible
	// to the balancer: sustained skew should trigger rebalancing, not
	// vanish behind the front door.
	c.loads.Record(ns, rng.Start, key)
	release, err := c.admit(sess.Tenant(), admission.OpRead, 1)
	if err != nil {
		return nil, false, err
	}
	defer release()
	spec := c.specFor(table)
	bound := spec.Staleness
	tracker := c.pump.Tracker()

	var staleSkipped []string
	try := func(nodeID string) (row.Row, uint64, bool, bool) {
		val, ver, found, err := c.router.GetFrom(ns, nodeID, key)
		if err != nil {
			return nil, 0, false, false
		}
		if !sess.Acceptable(table, key, ver, found) {
			return nil, 0, false, false
		}
		if !found {
			return nil, ver, false, true
		}
		r, err := row.Decode(val)
		if err != nil {
			return nil, 0, false, false
		}
		return r, ver, true, true
	}

	// Rotate across replicas — reads spread load like the paper's
	// relaxed-consistency read path; unacceptable answers (session
	// floor, staleness) fall through to the next replica and
	// ultimately the primary.
	n := len(rng.Replicas)
	off := int(c.readRR.Add(1)) % n
	for i := 0; i < n; i++ {
		nodeID := rng.Replicas[(off+i)%n]
		if bound > 0 && tracker.Staleness(ns, nodeID) > bound {
			staleSkipped = append(staleSkipped, nodeID)
			continue
		}
		if r, ver, found, ok := try(nodeID); ok {
			sess.ObserveRead(table, key, ver, found)
			return r, found, nil
		}
	}

	// No fresh replica answered acceptably. Stale replicas remain:
	// the declared priority order arbitrates (§3.3.1), and the outcome
	// is noted for the director/operators either way.
	if len(staleSkipped) > 0 {
		if spec.Prefers(consistency.AxisReadConsistency, consistency.AxisAvailability) {
			c.contention.record(ContentionEvent{
				At: c.clk.Now(), Table: table,
				Won:        consistency.AxisReadConsistency,
				Sacrificed: consistency.AxisAvailability,
			})
			return nil, false, ErrStaleReplicas
		}
		for _, nodeID := range staleSkipped {
			if r, ver, found, ok := try(nodeID); ok {
				sess.ObserveRead(table, key, ver, found)
				c.contention.record(ContentionEvent{
					At: c.clk.Now(), Table: table,
					Won:         consistency.AxisAvailability,
					Sacrificed:  consistency.AxisReadConsistency,
					StaleServed: true,
				})
				return r, found, nil
			}
		}
	}
	return nil, false, partition.ErrNoReplicaAvailable
}

// GetMulti reads many rows by primary key in one coordinator pass:
// keys are grouped by node and fetched through one batched request
// per node (partition.Router.GetBatch), so a page assembling N rows
// costs a handful of round-trips instead of N. Reads go to each
// range's primary, so every result is at least as fresh as Get's;
// no session bookkeeping is applied. Results are positional: rows[i]
// and found[i] answer pks[i].
func (c *Cluster) GetMulti(table string, pks []row.Row) (rows []row.Row, found []bool, err error) {
	start := c.clk.Now()
	rows, found, err = c.getMulti(table, pks)
	c.record(start, err)
	return rows, found, err
}

func (c *Cluster) getMulti(table string, pks []row.Row) ([]row.Row, []bool, error) {
	if len(pks) == 0 {
		return nil, nil, nil
	}
	t, err := c.tableDef(table)
	if err != nil {
		return nil, nil, err
	}
	ns := planner.TableNamespace(table)
	m, ok := c.router.Map(ns)
	if !ok {
		return nil, nil, fmt.Errorf("scads: no partition map for %s", ns)
	}
	keys := make([][]byte, len(pks))
	for i, pk := range pks {
		key, err := pkKey(t, pk)
		if err != nil {
			return nil, nil, err
		}
		keys[i] = key
		c.loads.Record(ns, m.Lookup(key).Start, key)
	}
	release, err := c.admit("", admission.OpRead, float64(len(pks)))
	if err != nil {
		return nil, nil, err
	}
	defer release()
	res, err := c.router.GetBatch(ns, keys, partition.ReadPrimary)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]row.Row, len(pks))
	found := make([]bool, len(pks))
	for i, gr := range res {
		if gr.Err != nil {
			return nil, nil, gr.Err
		}
		if !gr.Found {
			continue
		}
		r, err := row.Decode(gr.Value)
		if err != nil {
			return nil, nil, err
		}
		rows[i], found[i] = r, true
	}
	return rows, found, nil
}

// GetStall reads like GetSession but implements §3.3.1's stalling
// semantics: "if an update takes longer than the bound, a client query
// would stall until the updates can be confirmed". When the staleness
// bound is unsatisfiable and read-consistency is prioritised over
// availability, the read waits (polling on the cluster clock) for
// replication to catch up instead of failing immediately; it gives up
// with ErrStaleReplicas only after timeout. Namespaces that prioritise
// availability never stall — they serve stale data at once.
func (c *Cluster) GetStall(table string, pk row.Row, sess *session.Session, timeout time.Duration) (row.Row, bool, error) {
	start := c.clk.Now()
	deadline := start.Add(timeout)
	const pollEvery = 5 * time.Millisecond
	for {
		r, found, err := c.getSession(table, pk, sess)
		if err == nil || err != ErrStaleReplicas {
			c.record(start, err)
			return r, found, err
		}
		if !c.clk.Now().Add(pollEvery).Before(deadline) {
			c.record(start, err)
			return nil, false, err
		}
		<-c.clk.After(pollEvery)
	}
}

// InsertSession is Insert plus read-your-writes bookkeeping: the
// session records the write so its later reads are guaranteed to see
// it. The write is accounted to the session's bound tenant.
func (c *Cluster) InsertSession(table string, r row.Row, sess *session.Session) error {
	ver, err := c.insertAs(table, r, sess.Tenant())
	if err != nil {
		return err
	}
	c.observeOwnWrite(table, r, sess, false, ver)
	return nil
}

// DeleteSession is Delete plus read-your-writes bookkeeping.
func (c *Cluster) DeleteSession(table string, pk row.Row, sess *session.Session) error {
	ver, err := c.deleteAs(table, pk, sess.Tenant())
	if err != nil {
		return err
	}
	c.observeOwnWrite(table, pk, sess, true, ver)
	return nil
}

func (c *Cluster) observeOwnWrite(table string, pk row.Row, sess *session.Session, deleted bool, version uint64) {
	if sess == nil || version == 0 {
		return
	}
	t, err := c.tableDef(table)
	if err != nil {
		return
	}
	key, err := pkKey(t, pk)
	if err != nil {
		return
	}
	// The floor is the write's exact assigned version. An upper bound
	// (the coordinator's current HLC) is NOT correct here: concurrent
	// writers to other keys advance the HLC between this write's
	// versioning and its observation, and a floor above the record's
	// real version makes the session reject every replica — including
	// the primary that holds the write.
	sess.ObserveWrite(table, key, version, deleted)
}

// Query executes a declared query template with the given parameters,
// returning at most its LIMIT rows in index order. Every execution is
// a single bounded contiguous range read (§3.1).
func (c *Cluster) Query(name string, params map[string]any) ([]row.Row, error) {
	return c.QuerySession(name, params, nil)
}

// QuerySession is Query with the execution accounted to the session's
// bound tenant: the scan passes the tenant's admission gate and its
// result size is debited against the tenant's scan-byte quota.
func (c *Cluster) QuerySession(name string, params map[string]any, sess *session.Session) ([]row.Row, error) {
	start := c.clk.Now()
	rows, err := c.query(name, params, sess.Tenant())
	c.record(start, err)
	return rows, err
}

func (c *Cluster) query(name string, params map[string]any, tenant string) ([]row.Row, error) {
	plan := c.Plan(name)
	if plan == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownQuery, name)
	}
	norm := make(map[string]any, len(params))
	for k, v := range params {
		norm[k] = row.Normalize(v)
	}
	startKey, endKey, err := planner.ComputeBounds(plan, norm)
	if err != nil {
		return nil, err
	}

	if plan.Access == planner.AccessPKGet {
		if m, ok := c.router.Map(plan.Namespace); ok {
			c.loads.Record(plan.Namespace, m.Lookup(startKey).Start, startKey)
		}
		release, err := c.admit(tenant, admission.OpRead, 1)
		if err != nil {
			return nil, err
		}
		defer release()
		val, _, found, err := c.router.Get(plan.Namespace, startKey, partition.ReadAny)
		if err != nil || !found {
			return nil, err
		}
		r, err := row.Decode(val)
		if err != nil {
			return nil, err
		}
		return []row.Row{projectRow(r, plan.Project)}, nil
	}

	// A scan's load lands on every range it overlaps, not just the
	// first — otherwise a hot multi-range scan is invisible to the
	// balancer on all but its leading range and the planner never
	// splits or spreads the tail.
	if m, ok := c.router.Map(plan.Namespace); ok {
		for _, rng := range m.Overlapping(startKey, endKey) {
			k := startKey
			if rng.Start != nil && (k == nil || bytes.Compare(rng.Start, k) > 0) {
				k = rng.Start
			}
			c.loads.Record(plan.Namespace, rng.Start, k)
		}
	}

	release, err := c.admit(tenant, admission.OpScan, 1)
	if err != nil {
		return nil, err
	}
	defer release()

	// Scatter-gather scan with pushdown: residual filters and (when the
	// plan narrows stored rows) the projection travel with the request,
	// so storage nodes return pre-filtered, pre-projected rows instead
	// of the coordinator decoding every base row.
	opts := partition.ScanOptions{Limit: plan.Limit, Policy: partition.ReadAny, Tenant: tenant}
	filters, err := planner.ComputeFilters(plan, norm)
	if err != nil {
		return nil, err
	}
	opts.Preds = scanPreds(filters)
	if len(plan.Project) > 0 {
		cols := make([]string, len(plan.Project))
		for i, pc := range plan.Project {
			cols[i] = pc.Column
		}
		opts.Projection = cols
	}
	recs, err := c.router.ScanOpts(plan.Namespace, startKey, endKey, opts)
	if err != nil {
		return nil, err
	}
	// Scan-byte quotas are post-paid: the result size isn't known
	// until the fan-out returns, so the tenant's bucket is debited
	// after the fact and an overdraw blocks the *next* scan.
	var scanBytes int64
	for _, rec := range recs {
		scanBytes += int64(len(rec.Value))
	}
	c.admission.DebitScanBytes(tenant, scanBytes)
	out := make([]row.Row, 0, len(recs))
	for _, rec := range recs {
		r, err := row.Decode(rec.Value)
		if err != nil {
			return nil, err
		}
		if len(plan.Project) > 0 {
			r = projectRow(r, plan.Project)
		}
		out = append(out, r)
	}
	return out, nil
}

// scanPreds converts resolved planner filters into wire predicates.
func scanPreds(filters []planner.Filter) []rpc.ScanPred {
	if len(filters) == 0 {
		return nil
	}
	out := make([]rpc.ScanPred, len(filters))
	for i, f := range filters {
		out[i] = rpc.ScanPred{Column: f.Column, Op: predOp(f.Op), Value: f.Value}
	}
	return out
}

func predOp(op query.CompareOp) rpc.ScanPredOp {
	switch op {
	case query.OpLt:
		return rpc.PredLt
	case query.OpLe:
		return rpc.PredLe
	case query.OpGt:
		return rpc.PredGt
	case query.OpGe:
		return rpc.PredGe
	default:
		return rpc.PredEq
	}
}

// projectRow narrows a stored base row to the plan's projection (index
// accesses store pre-projected rows, so they skip this).
func projectRow(r row.Row, project []planner.ProjectCol) row.Row {
	if len(project) == 0 {
		return r
	}
	cols := make([]string, len(project))
	for i, pc := range project {
		cols[i] = pc.Column
	}
	return row.Project(r, cols)
}
