package scads

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"scads/internal/admission"
	"scads/internal/session"
)

// TestMultiTenantHammer floods a cluster with an adversarial
// best-effort tenant while compliant committed tenants keep writing,
// all under the race detector. The contracts under test: admission
// never loses an acked committed write, committed classes are never
// shed before the best-effort classes (with the watermark sized above
// the committed concurrency they cannot shed at all here), and the
// adversary's pressure lands on its own quota.
func TestMultiTenantHammer(t *testing.T) {
	const (
		advWorkers  = 24
		goodWorkers = 4
		hammerFor   = 500 * time.Millisecond
	)
	lc, err := NewLocalCluster(3, Config{
		ReplicationFactor: 2,
		Admission: admission.Config{
			// BE scans shed at 10 in flight, BE writes at 12; committed
			// writes only at 16 — unreachable while only goodWorkers
			// committed ops can be in flight on top of the BE cap.
			MaxInFlight: 16,
			Tenants: map[string]admission.TenantConfig{
				"adversary": {Priority: admission.BestEffort, OpsPerSec: 2000, Burst: 200},
				"compliant": {Priority: admission.Committed},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes makes "acked ⇒ readable through the session" a
	// guarantee rather than a replication race.
	if err := lc.ApplyConsistency(`
namespace users { session: read-your-writes; staleness: 10m; }
`); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("friendships", Row{"f1": "adv", "f2": "x"}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < advWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := lc.NewSession("users")
			sess.BindTenant("adversary")
			for i := 0; time.Since(start) < hammerFor; i++ {
				// Unpaced, error-blind: the adversary by construction.
				if i%4 == 0 {
					_, _ = lc.QuerySession("friends", map[string]any{"user": "adv"}, sess)
				} else {
					_ = lc.InsertSession("users", Row{
						"id": fmt.Sprintf("adv-%02d-%06d", w, i), "name": "a", "birthday": 1,
					}, sess)
				}
			}
		}(w)
	}

	acked := make([][]string, goodWorkers)
	lats := make([][]time.Duration, goodWorkers)
	sessions := make([]*session.Session, goodWorkers)
	for w := 0; w < goodWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := lc.NewSession("users")
			sess.BindTenant("compliant")
			sessions[w] = sess
			for i := 0; time.Since(start) < hammerFor; i++ {
				id := fmt.Sprintf("good-%02d-%06d", w, i)
				t0 := time.Now()
				err := lc.InsertSession("users", Row{"id": id, "name": "g", "birthday": 2}, sess)
				lats[w] = append(lats[w], time.Since(t0))
				if err == nil {
					acked[w] = append(acked[w], id)
				}
			}
		}(w)
	}
	wg.Wait()

	st := lc.Stats().Admission

	// Zero lost acked writes: every insert the compliant tenant saw
	// succeed must be readable through its session (read-your-writes;
	// a plain Get may legally hit a replica the async pump hasn't
	// reached yet).
	total := 0
	for w := range acked {
		total += len(acked[w])
		for _, id := range acked[w] {
			if _, found, err := lc.GetSession("users", Row{"id": id}, sessions[w]); err != nil || !found {
				t.Fatalf("acked write %s lost: found=%v err=%v", id, found, err)
			}
		}
	}
	if total == 0 {
		t.Fatal("compliant tenant landed zero writes")
	}

	// Committed classes never shed: the watermark math above makes the
	// strict priority ordering a hard zero here, not a tendency.
	if st.ShedByClass[0] != 0 || st.ShedByClass[1] != 0 {
		t.Fatalf("committed classes shed (%d writes, %d scans) while best-effort ran: %+v",
			st.ShedByClass[0], st.ShedByClass[1], st.ShedByClass)
	}

	// The adversary ran far past its 2000 ops/s quota, so the bucket
	// must have pushed back.
	if st.ShedQuota == 0 {
		t.Fatalf("adversary never hit its quota: %+v", st)
	}

	// Bounded compliant latency. The bound is loose (race detector,
	// shared CI hardware) — the regression it catches is the compliant
	// tenant queueing behind the flood instead of being insulated.
	var all []time.Duration
	for w := range lats {
		all = append(all, lats[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if p99 := all[len(all)*99/100]; p99 > 2*time.Second {
		t.Fatalf("compliant p99 = %v under adversarial flood", p99)
	}
}
