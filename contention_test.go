package scads

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
	"scads/internal/planner"
)

// partitionedCluster builds the §3.3.1 scenario: two replicas, the
// replication link to the secondary severed, fresh writes on the
// primary only, clock advanced past the staleness bound, and then the
// primary crashed so reads can only reach the stale secondary. It
// returns the cluster and virtual clock.
func partitionedCluster(t *testing.T, priority string) (*LocalCluster, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	if err := lc.ApplyConsistency(fmt.Sprintf(`
namespace users {
  staleness: 5s;
  priority: %s;
}
`, priority)); err != nil {
		t.Fatal(err)
	}

	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	primary := m.Ranges()[0].Replicas[0]
	secondary := m.Ranges()[0].Replicas[1]

	// v1 reaches both replicas.
	if err := lc.Insert("users", Row{"id": "a", "name": "v1", "birthday": 1}); err != nil {
		t.Fatal(err)
	}
	lc.Pump().Drain(100)

	// The datacenter link drops: the secondary serves reads but stops
	// receiving updates. v2 lands on the primary only.
	lc.PartitionReplica(secondary)
	if err := lc.Insert("users", Row{"id": "a", "name": "v2", "birthday": 1}); err != nil {
		t.Fatal(err)
	}
	lc.Pump().Drain(100) // delivery to the secondary fails and parks

	vc.Advance(10 * time.Second) // secondary now provably stale
	lc.CrashNode(primary)        // clients can only reach the stale side
	return lc, vc
}

func TestPartitionContentionConsistencyFirst(t *testing.T) {
	lc, _ := partitionedCluster(t, "read-consistency > availability")
	_, _, err := lc.Get("users", Row{"id": "a"})
	if !errors.Is(err, ErrStaleReplicas) {
		t.Fatalf("err = %v, want ErrStaleReplicas", err)
	}
	st := lc.Contention()
	if st.Total != 1 || st.ReadsFailed != 1 || st.StaleServed != 0 {
		t.Fatalf("contention stats = %+v, want one failed read", st)
	}
	evs := lc.ContentionEvents()
	if len(evs) != 1 {
		t.Fatalf("want 1 event, got %d", len(evs))
	}
	ev := evs[0]
	if ev.Table != "users" || ev.Won != consistency.AxisReadConsistency ||
		ev.Sacrificed != consistency.AxisAvailability || ev.StaleServed {
		t.Errorf("unexpected event %+v", ev)
	}
}

func TestPartitionContentionAvailabilityFirst(t *testing.T) {
	lc, _ := partitionedCluster(t, "availability > read-consistency")
	r, found, err := lc.Get("users", Row{"id": "a"})
	if err != nil || !found {
		t.Fatalf("Get = %v %v %v, want stale success", r, found, err)
	}
	// The stale replica still has v1: availability won, consistency lost.
	if r["name"] != "v1" {
		t.Errorf("name = %v, want the stale v1", r["name"])
	}
	st := lc.Contention()
	if st.Total != 1 || st.StaleServed != 1 || st.ReadsFailed != 0 {
		t.Fatalf("contention stats = %+v, want one stale serve", st)
	}
	evs := lc.ContentionEvents()
	if len(evs) != 1 || !evs[0].StaleServed || evs[0].Sacrificed != consistency.AxisReadConsistency {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestPartitionHealDeliversParkedUpdates(t *testing.T) {
	lc, vc := partitionedCluster(t, "availability > read-consistency")
	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	secondary := m.Ranges()[0].Replicas[1]

	// One stale read during the partition records a contention.
	if r, _, err := lc.Get("users", Row{"id": "a"}); err != nil || r["name"] != "v1" {
		t.Fatalf("pre-heal read = %v %v, want stale v1", r, err)
	}

	// Heal the link; parked retries deliver once their backoff elapses.
	lc.HealReplica(secondary)
	for i := 0; i < 20; i++ {
		vc.Advance(time.Second)
		lc.Pump().Drain(100)
	}
	if pending := lc.Pump().Stats().Pending; pending != 0 {
		t.Fatalf("pending = %d after heal, want 0", pending)
	}
	r, found, err := lc.Get("users", Row{"id": "a"})
	if err != nil || !found || r["name"] != "v2" {
		t.Fatalf("post-heal read = %v %v %v, want fresh v2", r, found, err)
	}
	// The healed read is fresh: no new contention was recorded.
	if st := lc.Contention(); st.Total != 1 {
		t.Fatalf("contention total = %d, want the 1 pre-heal event only", st.Total)
	}
}

func TestPartitionedReplicaStillServesReads(t *testing.T) {
	// PartitionReplica severs only replication; direct reads keep
	// working (that's what makes serving stale data possible at all).
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("users", Row{"id": "a", "name": "A", "birthday": 1}); err != nil {
		t.Fatal(err)
	}
	lc.Pump().Drain(100)

	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	for _, id := range m.Ranges()[0].Replicas[1:] {
		lc.PartitionReplica(id)
	}
	// Reads rotate over replicas; all must still answer.
	for i := 0; i < 4; i++ {
		if _, found, err := lc.Get("users", Row{"id": "a"}); err != nil || !found {
			t.Fatalf("read %d failed during replication-only partition: %v", i, err)
		}
	}
}

func TestOnContentionCallback(t *testing.T) {
	lc, _ := partitionedCluster(t, "read-consistency > availability")
	var notified []ContentionEvent
	lc.OnContention(func(ev ContentionEvent) { notified = append(notified, ev) })
	lc.Get("users", Row{"id": "a"})
	lc.Get("users", Row{"id": "a"})
	if len(notified) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(notified))
	}
	lc.OnContention(nil)
	lc.Get("users", Row{"id": "a"})
	if len(notified) != 2 {
		t.Fatal("callback fired after being cleared")
	}
}

func TestContentionLogBounded(t *testing.T) {
	lc, _ := partitionedCluster(t, "read-consistency > availability")
	for i := 0; i < maxContentionEvents+50; i++ {
		lc.Get("users", Row{"id": "a"})
	}
	evs := lc.ContentionEvents()
	if len(evs) != maxContentionEvents {
		t.Fatalf("log length = %d, want bounded at %d", len(evs), maxContentionEvents)
	}
	if st := lc.Contention(); st.Total != maxContentionEvents+50 {
		t.Fatalf("counter = %d, want %d (counters absorb dropped events)",
			st.Total, maxContentionEvents+50)
	}
}

func TestGetStallWaitsForReplication(t *testing.T) {
	// §3.3.1: "a client query would stall until the updates can be
	// confirmed". Consistency-first + partition: GetStall blocks; the
	// link heals and replication drains; the stalled read returns the
	// fresh value instead of an error.
	lc, vc := partitionedCluster(t, "read-consistency > availability")
	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	secondary := m.Ranges()[0].Replicas[1]

	// Heal the link and drain the parked update so the secondary has
	// v2 by the time the stalled reader polls again. Parked retries
	// wait out their backoff on the virtual clock.
	lc.HealReplica(secondary)

	type result struct {
		r   Row
		err error
	}
	done := make(chan result, 1)
	go func() {
		r, _, err := lc.GetStall("users", Row{"id": "a"}, nil, time.Minute)
		done <- result{r, err}
	}()

	// Drive the virtual clock and the pump until the reader returns.
	for i := 0; ; i++ {
		select {
		case res := <-done:
			if res.err != nil {
				t.Fatalf("stalled read failed: %v", res.err)
			}
			if res.r["name"] != "v2" {
				t.Fatalf("stalled read = %v, want fresh v2", res.r["name"])
			}
			return
		default:
		}
		if i > 100000 {
			t.Fatal("stalled read never returned")
		}
		lc.Pump().Drain(100)
		if vc.PendingTimers() > 0 {
			vc.Advance(5 * time.Millisecond)
		} else {
			runtime.Gosched()
		}
	}
}

func TestGetStallTimesOut(t *testing.T) {
	lc, vc := partitionedCluster(t, "read-consistency > availability")
	done := make(chan error, 1)
	go func() {
		_, _, err := lc.GetStall("users", Row{"id": "a"}, nil, 50*time.Millisecond)
		done <- err
	}()
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if !errors.Is(err, ErrStaleReplicas) {
				t.Fatalf("err = %v, want ErrStaleReplicas after timeout", err)
			}
			return
		default:
		}
		if i > 100000 {
			t.Fatal("GetStall did not time out")
		}
		if vc.PendingTimers() > 0 {
			vc.Advance(5 * time.Millisecond)
		} else {
			runtime.Gosched()
		}
	}
}

func TestGetStallAvailabilityFirstNeverStalls(t *testing.T) {
	lc, _ := partitionedCluster(t, "availability > read-consistency")
	// No clock advancement needed: the stale value returns immediately.
	r, found, err := lc.GetStall("users", Row{"id": "a"}, nil, time.Minute)
	if err != nil || !found || r["name"] != "v1" {
		t.Fatalf("GetStall = %v %v %v, want immediate stale v1", r, found, err)
	}
}
