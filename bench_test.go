// bench_test.go regenerates every figure and table of the paper as Go
// benchmarks. Each BenchmarkE<n> corresponds to one row of the
// EXPERIMENTS.md index; key measured quantities are emitted through
// b.ReportMetric so `go test -bench` output records the reproduction.
//
//	Figure 1  -> BenchmarkE1AnimotoScaleUp
//	Figure 2  -> BenchmarkE2FeedbackLoop (+ reactive ablation)
//	Figure 3  -> BenchmarkE3QueryCompile
//	Figure 4  -> BenchmarkE4a..E4e (one per consistency axis)
//	§1.1/§2.1 -> BenchmarkE5ScaleIndependence
//	§2.3      -> BenchmarkE6UpdateBound
//	§2.1      -> BenchmarkE7ScaleDownEconomics
//	§3.3.2    -> BenchmarkE8DeadlineQueue (+ FIFO ablation)
//	§2.2/§3.3.1 -> BenchmarkE9Advisor (cost & downtime-vs-cost guidance)
//	§3.3.1    -> BenchmarkE10PartitionContention (priority arbitration)
package scads

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/analyzer"
	"scads/internal/clock"
	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/record"
	"scads/internal/replication"
	"scads/internal/sim"
	"scads/internal/storage"
	"scads/internal/wal"
	"scads/internal/workload"
)

func paperSLA() consistency.PerformanceSLA {
	return consistency.PerformanceSLA{Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.9}
}

func paperService() cloudsim.ServiceModel {
	return cloudsim.ServiceModel{CapacityPerServer: 1000, Base: 5 * time.Millisecond, K: 30 * time.Millisecond}
}

// BenchmarkE1AnimotoScaleUp reproduces Figure 1: a viral ramp that
// needs ~50 servers on day 0 and 3400+ on day 3, with the model-driven
// director keeping the SLA while scaling 68x.
func BenchmarkE1AnimotoScaleUp(b *testing.B) {
	svc := paperService()
	trace := workload.AnimotoTrace(t0, svc.CapacityPerServer)
	var last sim.Result
	for i := 0; i < b.N; i++ {
		last = sim.Run(sim.Config{
			Start:          t0,
			Duration:       72 * time.Hour,
			Tick:           time.Minute,
			Trace:          trace,
			Service:        svc,
			SLA:            paperSLA(),
			Cloud:          cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10},
			Mode:           sim.ModeModelDriven,
			InitialServers: 50,
			Warmup:         true,
		})
	}
	b.ReportMetric(float64(last.PeakServers), "peak-servers")
	b.ReportMetric(float64(last.FinalServers), "final-servers")
	b.ReportMetric(100*last.ViolationRate(), "violation-%")
	b.ReportMetric(last.MachineHours, "machine-hours")
}

// BenchmarkE2FeedbackLoop measures the Figure 2 loop's reaction to a
// 4x load step: the model-driven director versus the reactive
// baseline (ablation for design decision #2 in DESIGN.md).
func BenchmarkE2FeedbackLoop(b *testing.B) {
	svc := paperService()
	stepAt := t0.Add(2 * time.Hour)
	trace := workload.Spike{
		Baseline: workload.Constant(2000), At: stepAt,
		Rise: time.Minute, Duration: 3 * time.Hour, Magnitude: 4,
	}
	run := func(mode sim.Mode) sim.Result {
		return sim.Run(sim.Config{
			Start: t0, Duration: 6 * time.Hour, Tick: time.Minute,
			Trace: trace, Service: svc, SLA: paperSLA(),
			Cloud:          cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10},
			Mode:           mode,
			InitialServers: 4,
			Warmup:         true,
		})
	}
	var md, re sim.Result
	for i := 0; i < b.N; i++ {
		md = run(sim.ModeModelDriven)
		re = run(sim.ModeReactive)
	}
	mdStats := sim.MeasureReaction(md, stepAt)
	reStats := sim.MeasureReaction(re, stepAt)
	b.ReportMetric(100*md.ViolationRate(), "model-violation-%")
	b.ReportMetric(100*re.ViolationRate(), "reactive-violation-%")
	b.ReportMetric(mdStats.Recovery.Minutes(), "model-recovery-min")
	b.ReportMetric(reStats.Recovery.Minutes(), "reactive-recovery-min")
}

// BenchmarkE3QueryCompile reproduces Figure 3: compiling the paper's
// social-network queries into the index-maintenance table.
func BenchmarkE3QueryCompile(b *testing.B) {
	ddl := `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    since int,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY friends
SELECT * FROM friendships WHERE f1 = ?user ORDER BY since DESC LIMIT 5000

QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 1000

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`
	var out *planner.Output
	for i := 0; i < b.N; i++ {
		s, err := query.Parse(ddl)
		if err != nil {
			b.Fatal(err)
		}
		results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
		if err != nil {
			b.Fatal(err)
		}
		out, err = planner.Compile(s, results)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(out.Maintenance)), "maintenance-rows")
	b.ReportMetric(float64(len(out.Indexes)), "indexes")
}

// BenchmarkE4aPerformanceSLA exercises Figure 4 row 1: sustained load
// against a live local cluster; reports the measured SLA-percentile
// latency and success rate.
func BenchmarkE4aPerformanceSLA(b *testing.B) {
	lc, err := NewLocalCluster(4, Config{ReplicationFactor: 2, SLA: paperSLA()})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		lc.Insert("users", Row{"id": fmt.Sprintf("user%05d", i), "name": "U", "birthday": i%365 + 1})
	}
	lc.FlushAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lc.Get("users", Row{"id": fmt.Sprintf("user%05d", i%1000)}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	iv := lc.Monitor().Roll()
	b.ReportMetric(float64(iv.Latency.Microseconds()), "p99.9-us")
	b.ReportMetric(iv.SuccessRate, "success-%")
}

// BenchmarkE4bWriteConsistency exercises Figure 4 row 2: the same
// contended counter under last-write-wins (loses updates),
// serializable (exact), and merge (converges to the union).
func BenchmarkE4bWriteConsistency(b *testing.B) {
	var lostLWW, lostSer, lostMerge float64
	for i := 0; i < b.N; i++ {
		lostLWW = contendedCounterLoss(b, "last-write-wins")
		lostSer = contendedCounterLoss(b, "serializable")
		lostMerge = mergeUnionLoss(b)
	}
	b.ReportMetric(lostLWW, "lww-lost-updates")
	b.ReportMetric(lostSer, "serializable-lost-updates")
	b.ReportMetric(lostMerge, "merge-lost-entries")
}

// mergeUnionLoss has concurrent writers each union-appending their own
// wall post; with write: merge(union) every post must survive.
func mergeUnionLoss(b *testing.B) float64 {
	lc, err := NewLocalCluster(2, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	if err := lc.ApplyConsistency(`namespace users { write: merge(union); }`); err != nil {
		b.Fatal(err)
	}
	const workers = 32
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			lc.Insert("users", Row{"id": "wall", "name": fmt.Sprintf("post-%02d", w), "birthday": 1})
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	cur, _, err := lc.Get("users", Row{"id": "wall"})
	if err != nil || cur == nil {
		b.Fatal("wall missing")
	}
	missing := 0
	posts := cur["name"].(string)
	for w := 0; w < workers; w++ {
		if !strings.Contains(posts, fmt.Sprintf("post-%02d", w)) {
			missing++
		}
	}
	return float64(missing)
}

func contendedCounterLoss(b *testing.B, mode string) float64 {
	lc, err := NewLocalCluster(2, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	if err := lc.ApplyConsistency(fmt.Sprintf("namespace users { write: %s; }", mode)); err != nil {
		b.Fatal(err)
	}
	const workers, iters = 8, 50
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < iters; i++ {
				if mode == "serializable" {
					lc.UpdateFunc("users", Row{"id": "ctr"}, func(cur Row) (Row, error) {
						n := int64(0)
						if cur != nil {
							n = cur["birthday"].(int64)
						}
						return Row{"id": "ctr", "birthday": n + 1}, nil
					})
				} else {
					// Non-atomic read-modify-write: the LWW hazard. The
					// yield models app-server think time between a web
					// request's read and its write — the window in which
					// concurrent requests race.
					cur, _, _ := lc.Get("users", Row{"id": "ctr"})
					n := int64(0)
					if cur != nil {
						n = cur["birthday"].(int64)
					}
					runtime.Gosched()
					lc.Insert("users", Row{"id": "ctr", "birthday": n + 1})
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	cur, _, _ := lc.Get("users", Row{"id": "ctr"})
	got := int64(0)
	if cur != nil {
		got = cur["birthday"].(int64)
	}
	return float64(workers*iters) - float64(got)
}

// BenchmarkE4cStalenessBound exercises Figure 4 row 3: with the pump
// draining at a fixed budget, the tracker's observed maximum staleness
// stays within the declared bound whenever drain capacity matches the
// write rate.
func BenchmarkE4cStalenessBound(b *testing.B) {
	var worst time.Duration
	var violations int64
	for i := 0; i < b.N; i++ {
		vc := clock.NewVirtual(t0)
		q := replication.NewQueue(replication.ByDeadline)
		pump := replication.NewPump(q, func(ns, node string, recs []record.Record) error {
			return nil
		}, vc)
		worst = 0
		const bound = 10 * time.Second
		ver := uint64(0)
		for tick := 0; tick < 300; tick++ { // 5 minutes, 1s ticks
			if tick < 120 {
				for w := 0; w < 50; w++ { // 50 writes/s burst for 2 min
					ver++
					pump.Enqueue("ns", record.Record{Key: []byte{byte(w)}, Version: ver},
						[]string{"replica"}, bound)
				}
			}
			// Probe before draining so accumulated backlog is visible.
			if st := pump.Tracker().Staleness("ns", "replica"); st > worst {
				worst = st
			}
			pump.Drain(48) // slightly under-provisioned during the burst
			vc.Advance(time.Second)
		}
		violations = pump.Stats().Violations
	}
	b.ReportMetric(worst.Seconds(), "max-staleness-s")
	b.ReportMetric(10, "bound-s")
	b.ReportMetric(float64(violations), "bound-violations")
}

// BenchmarkE4dSessionGuarantees exercises Figure 4 row 4: fraction of
// reads that observe the session's own write immediately after writing,
// with and without read-your-writes, while replication lags.
func BenchmarkE4dSessionGuarantees(b *testing.B) {
	var withSess, without float64
	for i := 0; i < b.N; i++ {
		withSess = ownWriteVisibility(b, true)
		without = ownWriteVisibility(b, false)
	}
	b.ReportMetric(100*withSess, "with-session-%")
	b.ReportMetric(100*without, "without-session-%")
}

func ownWriteVisibility(b *testing.B, useSession bool) float64 {
	lc, err := NewLocalCluster(2, Config{ReplicationFactor: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	lc.ApplyConsistency(`namespace users { session: read-your-writes; }`)

	const trials = 200
	seen := 0
	for i := 0; i < trials; i++ {
		id := fmt.Sprintf("u%04d", i)
		r := Row{"id": id, "name": "N", "birthday": 1}
		if useSession {
			sess := lc.NewSession("users")
			lc.InsertSession("users", r, sess)
			if _, found, _ := lc.GetSession("users", Row{"id": id}, sess); found {
				seen++
			}
		} else {
			lc.Insert("users", r)
			// Replication to the secondary has not been drained;
			// round-robin reads can hit the stale replica.
			if _, found, _ := lc.Get("users", Row{"id": id}); found {
				seen++
			}
		}
	}
	return float64(seen) / trials
}

// BenchmarkE4eDurability exercises Figure 4 row 5: replicas required
// for durability targets under a node-failure model, analytic vs Monte
// Carlo.
func BenchmarkE4eDurability(b *testing.B) {
	const pFail = 0.01
	var r3 int
	var mc float64
	for i := 0; i < b.N; i++ {
		var err error
		r3, err = consistency.RequiredReplicas(pFail, 0.99999)
		if err != nil {
			b.Fatal(err)
		}
		mc = consistency.MonteCarloSurvival(pFail, r3, 100000, 7)
	}
	b.ReportMetric(float64(r3), "replicas-for-5-nines")
	b.ReportMetric(mc, "mc-survival")
	b.ReportMetric(consistency.SurvivalProbability(pFail, r3), "analytic-survival")
}

// BenchmarkE5ScaleIndependence verifies §1.1's defining property: the
// birthday query's latency does not grow with the user count. The
// probe user's data is identical at every scale; only the total data
// volume grows.
func BenchmarkE5ScaleIndependence(b *testing.B) {
	for _, users := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			lc := buildScaledCluster(b, users)
			defer lc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "probe"})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 20 {
					b.Fatalf("probe rows = %d", len(rows))
				}
			}
		})
	}
}

func buildScaledCluster(b *testing.B, users int) *LocalCluster {
	b.Helper()
	lc, err := NewLocalCluster(4, Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	// Background population, written straight through the public API.
	for i := 0; i < users; i++ {
		lc.Insert("users", Row{"id": fmt.Sprintf("user%07d", i), "name": "U", "birthday": i%365 + 1})
		if i%1000 == 999 {
			lc.FlushAll()
		}
	}
	// The probe user: exactly 20 friends at every scale.
	lc.Insert("users", Row{"id": "probe", "name": "Probe", "birthday": 100})
	for i := 0; i < 20; i++ {
		lc.Insert("friendships", Row{"f1": "probe", "f2": fmt.Sprintf("user%07d", i)})
	}
	if err := lc.FlushAll(); err != nil {
		b.Fatal(err)
	}
	return lc
}

// BenchmarkE6UpdateBound exercises §2.3: the Facebook-style bounded
// schema is accepted, the Twitter-style unbounded one rejected, and
// the decision is made entirely at compile time.
func BenchmarkE6UpdateBound(b *testing.B) {
	facebook := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY q SELECT u.* FROM friendships f JOIN users u ON f.f2 = u.id WHERE f.f1 = ?user LIMIT 100
`
	twitter := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows ( follower string, followee string, PRIMARY KEY (follower, followee) )
QUERY q SELECT u.* FROM follows f JOIN users u ON f.follower = u.id WHERE f.followee = ?user LIMIT 100
`
	accepted, rejected := 0, 0
	for i := 0; i < b.N; i++ {
		sF := query.MustParse(facebook)
		if _, err := analyzer.Analyze(sF, analyzer.Config{}); err == nil {
			accepted++
		}
		sT := query.MustParse(twitter)
		if _, err := analyzer.Analyze(sT, analyzer.Config{}); err != nil {
			rejected++
		}
	}
	if accepted != b.N || rejected != b.N {
		b.Fatalf("accepted=%d rejected=%d of %d", accepted, rejected, b.N)
	}
	b.ReportMetric(1, "facebook-accepted")
	b.ReportMetric(1, "twitter-rejected")
}

// BenchmarkE7ScaleDownEconomics exercises §2.1's cost claim: over a
// diurnal day, the elastic cluster matches SLA compliance at a
// fraction of the statically peak-provisioned cost.
func BenchmarkE7ScaleDownEconomics(b *testing.B) {
	svc := paperService()
	trace := workload.Diurnal{Base: 3000, Amplitude: 2500, PeakHour: 14}
	common := sim.Config{
		Start: t0, Duration: 24 * time.Hour, Tick: time.Minute,
		Trace: trace, Service: svc, SLA: paperSLA(),
		Cloud:  cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10, BillingGranularity: time.Hour},
		Warmup: true,
	}
	var elastic, static sim.Result
	for i := 0; i < b.N; i++ {
		e := common
		e.Mode = sim.ModeModelDriven
		elastic = sim.Run(e)

		s := common
		s.Mode = sim.ModeStatic
		s.StaticServers = sim.RequiredServers(svc, paperSLA().LatencyBound, 5500)
		static = sim.Run(s)
	}
	b.ReportMetric(elastic.CostUSD, "elastic-$")
	b.ReportMetric(static.CostUSD, "static-peak-$")
	b.ReportMetric(100*elastic.ViolationRate(), "elastic-violation-%")
	b.ReportMetric(100*static.ViolationRate(), "static-violation-%")
	b.ReportMetric(100*(1-elastic.CostUSD/static.CostUSD), "savings-%")
}

// BenchmarkE8DeadlineQueue exercises §3.3.2: with constrained
// propagation bandwidth, the deadline queue protects tight staleness
// bounds while FIFO violates them — the ablation for design decision
// #1.
func BenchmarkE8DeadlineQueue(b *testing.B) {
	var dl, ff sim.E8Result
	for i := 0; i < b.N; i++ {
		dl = sim.RunE8(replication.ByDeadline, t0)
		ff = sim.RunE8(replication.FIFO, t0)
	}
	b.ReportMetric(float64(dl.TightViolations), "deadline-tight-violations")
	b.ReportMetric(float64(ff.TightViolations), "fifo-tight-violations")
	b.ReportMetric(float64(dl.LooseViolations), "deadline-loose-violations")
	b.ReportMetric(float64(ff.LooseViolations), "fifo-loose-violations")
}

// BenchmarkE9Advisor regenerates the §2.2/§3.3.1 guidance numbers: the
// advisor's pre-deployment prediction of index storage, write
// amplification, cluster sizing and the downtime-vs-cost curve for the
// social-network schema at one million users.
func BenchmarkE9Advisor(b *testing.B) {
	w := AdviceWorkload{
		QueryRates: map[string]float64{
			"findUser": 4000, "friends": 1500, "friendsWithUpcomingBirthdays": 1000,
		},
		UpdateRates: map[string]float64{"users": 80, "friendships": 40},
		TableRows:   map[string]int{"users": 1_000_000, "friendships": 20_000_000},
	}
	cfg := AdviceConfig{
		Capacity: AnalyticCapacity{
			PerServer: 1000, Base: 5 * time.Millisecond, K: 30 * time.Millisecond,
		},
		SLALatency:        100 * time.Millisecond,
		ReplicationFactor: 2,
	}
	var rep *AdviceReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = AdviseDDL(socialDDL, analyzer.Config{}, w, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Cluster.Servers), "servers")
	b.ReportMetric(rep.Cluster.WriteAmplification, "write-amplification-x")
	b.ReportMetric(float64(rep.Cluster.StorageBytes)/(1<<30), "storage-GiB")
	b.ReportMetric(rep.Cluster.MonthlyTotalUSD, "monthly-$")
	b.ReportMetric(rep.Curve[1].DowntimeMinutesPerMonth, "rf2-downtime-min/mo")
}

// BenchmarkE10PartitionContention reproduces §3.3.1's datacenter
// disconnect: with the replication link to the secondary severed and
// the primary unreachable, availability-first specs keep serving
// (stale) answers while read-consistency-first specs fail reads; both
// orders note the contention for the director.
func BenchmarkE10PartitionContention(b *testing.B) {
	run := func(priority string) (served, failed int64, noted ContentionStats) {
		vc := clock.NewVirtual(t0)
		lc, err := NewLocalCluster(2, Config{Clock: vc, ReplicationFactor: 2})
		if err != nil {
			b.Fatal(err)
		}
		defer lc.Close()
		if err := lc.DefineSchema(socialDDL); err != nil {
			b.Fatal(err)
		}
		if err := lc.ApplyConsistency(fmt.Sprintf(
			"namespace users { staleness: 5s; priority: %s; }", priority)); err != nil {
			b.Fatal(err)
		}
		m, _ := lc.Router().Map(planner.TableNamespace("users"))
		lc.Insert("users", Row{"id": "a", "name": "v1", "birthday": 1})
		lc.Pump().Drain(100)
		lc.PartitionReplica(m.Ranges()[0].Replicas[1])
		lc.Insert("users", Row{"id": "a", "name": "v2", "birthday": 1})
		lc.Pump().Drain(100)
		vc.Advance(10 * time.Second)
		lc.CrashNode(m.Ranges()[0].Replicas[0])
		for i := 0; i < 100; i++ {
			if _, _, err := lc.Get("users", Row{"id": "a"}); err != nil {
				failed++
			} else {
				served++
			}
		}
		return served, failed, lc.Contention()
	}
	var availServed, availFailed, consServed, consFailed int64
	var availNoted, consNoted ContentionStats
	for i := 0; i < b.N; i++ {
		availServed, availFailed, availNoted = run("availability > read-consistency")
		consServed, consFailed, consNoted = run("read-consistency > availability")
	}
	b.ReportMetric(float64(availServed), "avail-first-served")
	b.ReportMetric(float64(availFailed), "avail-first-failed")
	b.ReportMetric(float64(consServed), "consistency-first-served")
	b.ReportMetric(float64(consFailed), "consistency-first-failed")
	b.ReportMetric(float64(availNoted.StaleServed), "avail-first-noted-stale")
	b.ReportMetric(float64(consNoted.ReadsFailed), "consistency-first-noted-failures")
}

// BenchmarkE11HotRangeRebalance measures the workload-driven
// repartitioning loop: a skewed window is tracked, the hot range is
// split at the observed median key, and ranges move until primaries
// spread — §3.3.1's "current workload information ... used to
// automatically configure ... partitioning".
func BenchmarkE11HotRangeRebalance(b *testing.B) {
	var ranges, primaries, actions int
	for i := 0; i < b.N; i++ {
		vc := clock.NewVirtual(t0)
		lc, err := NewLocalCluster(4, Config{Clock: vc})
		if err != nil {
			b.Fatal(err)
		}
		if err := lc.DefineSchema(socialDDL); err != nil {
			b.Fatal(err)
		}
		for u := 0; u < 200; u++ {
			lc.Insert("users", Row{
				"id": fmt.Sprintf("user%04d", u), "name": "U", "birthday": 1,
			})
		}
		actions = 0
		for round := 0; round < 3; round++ {
			for k := 0; k < 400; k++ {
				for j := 0; j < 4; j++ {
					lc.Get("users", Row{"id": fmt.Sprintf("user%04d", j*5)})
				}
				lc.Get("users", Row{"id": fmt.Sprintf("user%04d", k%200)})
			}
			plan, err := lc.Rebalance(BalanceConfig{})
			if err != nil {
				b.Fatal(err)
			}
			actions += len(plan)
		}
		m, _ := lc.Router().Map(planner.TableNamespace("users"))
		ranges = m.Len()
		prim := map[string]bool{}
		for _, rng := range m.Ranges() {
			prim[rng.Replicas[0]] = true
		}
		primaries = len(prim)
		lc.Close()
	}
	b.ReportMetric(float64(ranges), "final-ranges")
	b.ReportMetric(float64(primaries), "primary-nodes")
	b.ReportMetric(float64(actions), "plan-actions")

	// Ablation: with splitting disabled the single-range hotspot has
	// nowhere to go — moves alone cannot spread one range's load, so
	// every range keeps its original primary.
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(4, Config{Clock: vc})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		b.Fatal(err)
	}
	for u := 0; u < 200; u++ {
		lc.Insert("users", Row{"id": fmt.Sprintf("user%04d", u), "name": "U", "birthday": 1})
	}
	for round := 0; round < 3; round++ {
		for k := 0; k < 400; k++ {
			lc.Get("users", Row{"id": fmt.Sprintf("user%04d", k%20)})
		}
		if _, err := lc.Rebalance(BalanceConfig{SplitFraction: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	prim := map[string]bool{}
	for _, rng := range m.Ranges() {
		prim[rng.Replicas[0]] = true
	}
	b.ReportMetric(float64(m.Len()), "noSplit-final-ranges")
	b.ReportMetric(float64(len(prim)), "noSplit-primary-nodes")
}

// --- batched write pipeline and read cache (this repo's scaling work,
// beyond the paper's figures) ---

// BenchmarkGroupCommitWAL is the acceptance benchmark for the batched
// group-commit write pipeline: concurrent durable writers through
// wal.AppendGroup (shared fsync per commit group) versus the unbatched
// baseline (one private fsync per append, Options.SyncEveryAppend).
// The batched path must win at >= 4 concurrent writers; fsyncs/op
// reports how much durability work each configuration actually paid.
func BenchmarkGroupCommitWAL(b *testing.B) {
	payload := strings.Repeat("x", 128)
	for _, writers := range []int{1, 4, 16} {
		for _, mode := range []string{"unbatched", "group-commit"} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, writers), func(b *testing.B) {
				var opts *wal.Options
				if mode == "unbatched" {
					opts = &wal.Options{SyncEveryAppend: true}
				}
				l, _, err := wal.Open(b.TempDir(), opts)
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							rec := record.Record{
								Key:     []byte(fmt.Sprintf("w%02d-%09d", w, i)),
								Value:   []byte(payload),
								Version: uint64(i),
							}
							var appendErr error
							if mode == "unbatched" {
								appendErr = l.Append(rec)
							} else {
								appendErr = l.AppendGroup(rec)
							}
							if appendErr != nil {
								b.Error(appendErr)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				st := l.Stats()
				b.ReportMetric(float64(st.Syncs)/float64(b.N), "fsyncs/op")
			})
		}
	}
}

// BenchmarkReadCache measures the sharded read cache on a namespace
// whose working set lives in SSTables: cached point gets skip the
// memtable/SSTable resolution entirely after the first touch.
func BenchmarkReadCache(b *testing.B) {
	const keys = 4096
	for _, mode := range []string{"uncached", "cached"} {
		b.Run(mode, func(b *testing.B) {
			cacheBytes := int64(0)
			if mode == "uncached" {
				cacheBytes = -1
			}
			e, err := storage.Open(storage.Options{Dir: b.TempDir(), NodeID: 1, CacheBytes: cacheBytes})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			ns, err := e.Namespace("users")
			if err != nil {
				b.Fatal(err)
			}
			val := []byte(strings.Repeat("v", 256))
			for i := 0; i < keys; i++ {
				if _, err := ns.Put([]byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := ns.Flush(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := ns.Get([]byte(fmt.Sprintf("key-%06d", i%keys))); !ok || err != nil {
					b.Fatalf("get: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}

// BenchmarkInsertBatch compares row-at-a-time Insert against the
// batched coordinator path (InsertBatch), which groups records per
// primary node into multi-record applies.
func BenchmarkInsertBatch(b *testing.B) {
	const chunk = 100
	for _, mode := range []string{"loop-insert", "insert-batch"} {
		b.Run(mode, func(b *testing.B) {
			lc, err := NewLocalCluster(4, Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer lc.Close()
			if err := lc.DefineSchema(socialDDL); err != nil {
				b.Fatal(err)
			}
			rows := make([]Row, chunk)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range rows {
					rows[j] = Row{"id": fmt.Sprintf("u%09d-%02d", i, j), "name": "N", "birthday": 1}
				}
				if mode == "loop-insert" {
					for _, r := range rows {
						if err := lc.Insert("users", r); err != nil {
							b.Fatal(err)
						}
					}
				} else if err := lc.InsertBatch("users", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := lc.FlushAll(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
