module scads

go 1.24
