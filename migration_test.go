package scads

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"scads/internal/balancer"
	"scads/internal/migration"
	"scads/internal/planner"
	"scads/internal/row"
)

// newRealClockCluster is the migration-test variant of
// newSocialCluster: real wall clock, so writer goroutines and the
// migrating goroutine genuinely interleave.
func newRealClockCluster(t testing.TB, nodes, rf int) *LocalCluster {
	t.Helper()
	lc, err := NewLocalCluster(nodes, Config{ReplicationFactor: rf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	return lc
}

func encodedUserKey(t testing.TB, id string) []byte {
	t.Helper()
	key, err := row.EncodeKey(Row{"_": row.Normalize(id)}, []string{"_"})
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestMigrationUnderConcurrentWritesNoLoss is the acceptance test for
// the online migration protocol: writers hammer inserts, updates and
// deletes into ranges while those same ranges migrate node to node,
// and afterwards every acknowledged write must be readable (and every
// acknowledged delete must stay deleted). Run under -race in CI.
func TestMigrationUnderConcurrentWritesNoLoss(t *testing.T) {
	lc := newRealClockCluster(t, 3, 1)
	ns := planner.TableNamespace("users")
	if err := lc.SplitTable("users", "user1000", "user2000", "user3000"); err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		opsPerWriter  = 250
		migrateRounds = 8
	)

	// lastAcked[key] is the latest acknowledged state: the round whose
	// write (or delete) the cluster accepted. Writers own disjoint key
	// sets, so per-key order is the program order.
	type ackedState struct {
		round   int
		deleted bool
	}
	var (
		ackMu     sync.Mutex
		lastAcked = map[string]ackedState{}
	)

	// Seed every range so snapshot pages carry real data from the first
	// migration on.
	for w := 0; w < writers; w++ {
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("user%04d", w*1000+i)
			if err := lc.Insert("users", Row{
				"id": id, "name": fmt.Sprintf("w%d-r%d", w, -1), "birthday": 1,
			}); err != nil {
				t.Fatal(err)
			}
			lastAcked[id] = ackedState{round: -1}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				// Keys cycle so later rounds overwrite earlier ones,
				// spread across all four ranges.
				id := fmt.Sprintf("user%04d", w*1000+i%40)
				if i%10 == 9 {
					if err := lc.Delete("users", Row{"id": id}); err != nil {
						t.Errorf("writer %d: delete %s: %v", w, id, err)
						return
					}
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i, deleted: true}
					ackMu.Unlock()
					continue
				}
				err := lc.Insert("users", Row{
					"id": id, "name": fmt.Sprintf("w%d-r%d", w, i), "birthday": i%365 + 1,
				})
				if err != nil {
					t.Errorf("writer %d: insert %s: %v", w, id, err)
					return
				}
				ackMu.Lock()
				lastAcked[id] = ackedState{round: i}
				ackMu.Unlock()
			}
		}(w)
	}

	// Concurrently cycle every range across the node set.
	nodeIDs := lc.NodeIDs()
	m, ok := lc.Router().Map(ns)
	if !ok {
		t.Fatal("no partition map")
	}
	migrated := 0
	for r := 0; r < migrateRounds; r++ {
		for i, rng := range m.Ranges() {
			key := rng.Start
			if key == nil {
				key = []byte{}
			}
			target := []string{nodeIDs[(r+i)%len(nodeIDs)]}
			if err := lc.MoveRange(ns, key, target); err != nil {
				t.Fatalf("migration round %d range %d: %v", r, i, err)
			}
			migrated++
		}
		// Pace the churn across the writers' run so every migration
		// races live writes instead of finishing before them.
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()

	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("no migrations ran")
	}

	// Every acknowledged write is readable with exactly its last acked
	// content; every acknowledged delete stays deleted (nothing
	// resurrects from a stale snapshot page).
	lost, wrong, resurrected := 0, 0, 0
	for id, want := range lastAcked {
		r, found, err := lc.Get("users", Row{"id": id})
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		switch {
		case want.deleted && found:
			resurrected++
		case !want.deleted && !found:
			lost++
		case !want.deleted && found:
			// Keys are "user<w><nnn>", so the writer digit plus the
			// acked round reconstruct the exact value written.
			wantName := fmt.Sprintf("w%c-r%d", id[4], want.round)
			if r["name"] != wantName {
				wrong++
			}
		}
	}
	if lost > 0 || resurrected > 0 || wrong > 0 {
		t.Fatalf("after %d migrations: %d acknowledged writes lost, %d deletes resurrected, %d corrupted (of %d keys)",
			migrated, lost, resurrected, wrong, len(lastAcked))
	}

	st := lc.MigrationStats()
	if st.Succeeded == 0 || st.CleanupPending != 0 {
		t.Fatalf("migration stats = %+v", st)
	}
	// The migrations genuinely moved data while it was being written.
	if st.SnapshotRecords == 0 {
		t.Fatalf("no snapshot records shipped — migrations did not overlap data: %+v", st)
	}
}

// TestMigrationRetryAfterFlipFailure drives the cluster-level retry
// path: the donor crashes after the routing flip but before teardown,
// the migration still counts as succeeded (no acknowledged write is
// at risk), and RetryCleanups finishes the teardown once the donor
// returns.
func TestMigrationRetryAfterFlipFailure(t *testing.T) {
	lc := newRealClockCluster(t, 2, 1)
	seedUsers(t, lc.Cluster, 30)
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	donor := m.Ranges()[0].Replicas[0]
	var other string
	for _, id := range lc.NodeIDs() {
		if id != donor {
			other = id
		}
	}

	lc.Migrations().OnPhase = func(ev migration.Event) {
		if ev.Phase == migration.PhaseCleanup && ev.Err == nil {
			lc.CrashNode(donor)
		}
	}
	if err := lc.MoveRange(ns, []byte{}, []string{other}); err != nil {
		t.Fatal(err)
	}
	lc.Migrations().OnPhase = nil

	if got := m.Ranges()[0].Replicas[0]; got != other {
		t.Fatalf("flip lost: primary %s", got)
	}
	// All data is served by the new primary while teardown is pending.
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after flip: found=%v err=%v", id, found, err)
		}
	}
	if st := lc.MigrationStats(); st.CleanupPending == 0 {
		t.Fatalf("expected pending cleanup, stats = %+v", st)
	}

	lc.RecoverNode(donor)
	if remaining := lc.Migrations().RetryCleanups(); remaining != 0 {
		t.Fatalf("RetryCleanups left %d nodes pending", remaining)
	}
	node, _ := lc.Node(donor)
	stats := node.Engine().Stats()
	if stats.RecordCount != 0 {
		t.Fatalf("donor still holds %d records after retried teardown", stats.RecordCount)
	}

	// The same migration re-run is an idempotent no-op, and the range
	// can migrate back onto the cleaned donor.
	if err := lc.MoveRange(ns, []byte{}, []string{other}); err != nil {
		t.Fatal(err)
	}
	if err := lc.MoveRange(ns, []byte{}, []string{donor}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after migrating back: found=%v err=%v", id, found, err)
		}
	}
}

// TestRebalanceReturnsExecutedPrefix: a mid-plan failure reports the
// executed prefix instead of discarding which actions already took
// effect.
func TestRebalanceReturnsExecutedPrefix(t *testing.T) {
	lc := newRealClockCluster(t, 1, 1)
	// Several ranges, all hot and all on node-001: the planner proposes
	// moves onto the idle fresh nodes (splits may come along too).
	if err := lc.SplitTable("users", "user0015", "user0030", "user0045"); err != nil {
		t.Fatal(err)
	}
	seedUsers(t, lc.Cluster, 60)
	for i := 0; i < 2; i++ {
		if _, err := lc.AddStorageNode(); err != nil {
			t.Fatal(err)
		}
	}
	// The fresh nodes are planning targets but cannot accept the data
	// copy: every move fails, every split succeeds.
	lc.PartitionReplica("node-002")
	lc.PartitionReplica("node-003")

	plan := lc.RebalancePlan(BalanceConfig{MinOps: 1, ImbalanceRatio: 1.1})
	hasMove := false
	for _, a := range plan {
		if a.Kind == balancer.ActionMove {
			hasMove = true
		}
	}
	if !hasMove {
		t.Fatalf("plan has no moves: %v", plan)
	}

	executed, err := lc.Rebalance(BalanceConfig{MinOps: 1, ImbalanceRatio: 1.1})
	if err == nil {
		t.Fatal("rebalance succeeded despite unreachable move targets")
	}
	if len(executed) >= len(plan) {
		t.Fatalf("executed %d actions of a %d-action plan that failed", len(executed), len(plan))
	}
	for i, a := range executed {
		if a.Kind != plan[i].Kind || a.Namespace != plan[i].Namespace {
			t.Fatalf("executed[%d] = %v does not match plan prefix %v", i, a, plan[i])
		}
		if a.Kind == balancer.ActionMove {
			t.Fatalf("move reported as executed but all moves must fail: %v", a)
		}
	}
	// The partition map reflects exactly the executed prefix.
	m, _ := lc.Router().Map(planner.TableNamespace("users"))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExecutePlanSplitAwareMove: a move planned before an earlier
// split in the same plan relocates only the post-split left half when
// re-looked-up by the action's Start key.
func TestExecutePlanSplitAwareMove(t *testing.T) {
	lc := newRealClockCluster(t, 2, 1)
	seedUsers(t, lc.Cluster, 40)
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	origPrimary := m.Ranges()[0].Replicas[0]
	var other string
	for _, id := range lc.NodeIDs() {
		if id != origPrimary {
			other = id
		}
	}

	splitAt := encodedUserKey(t, "user0020")
	plan := []BalanceAction{
		{Kind: balancer.ActionSplit, Namespace: ns, Start: nil, At: splitAt},
		// Planned against the pre-split range (Start nil = whole
		// keyspace); must move only [nil, user0020) after the split.
		{Kind: balancer.ActionMove, Namespace: ns, Start: nil, Target: []string{other}},
	}
	executed, err := lc.executePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != len(plan) {
		t.Fatalf("executed %d of %d actions", len(executed), len(plan))
	}
	ranges := m.Ranges()
	if len(ranges) != 2 {
		t.Fatalf("expected 2 ranges, got %d", len(ranges))
	}
	if got := ranges[0].Replicas[0]; got != other {
		t.Fatalf("left half on %s, want %s", got, other)
	}
	if got := ranges[1].Replicas[0]; got != origPrimary {
		t.Fatalf("right half moved to %s; split-aware move must leave it on %s", got, origPrimary)
	}
	// Both halves fully readable from their owners.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s): found=%v err=%v", id, found, err)
		}
	}
}
