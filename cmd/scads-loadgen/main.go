// Command scads-loadgen drives a cluster of scads-server nodes with
// the CloudStone-style social workload: it declares the paper's §3.2
// schema, seeds a bounded-degree social graph, then issues the
// read-heavy request mix at a target rate, reporting SLA compliance.
//
// Usage:
//
//	scads-loadgen -nodes 127.0.0.1:7070,127.0.0.1:7071 \
//	    -users 10000 -rate 500 -duration 60s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof debug endpoint
	"strings"
	"time"

	"scads"
	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/rpc"
	"scads/internal/workload"
)

const socialDDL = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1
QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000
QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func main() {
	var (
		nodes     = flag.String("nodes", "127.0.0.1:7070", "comma-separated storage node addresses")
		users     = flag.Int("users", 1000, "seed users")
		friends   = flag.Int("friends", 10, "average friends per user")
		rate      = flag.Float64("rate", 200, "target requests/second")
		duration  = flag.Duration("duration", 30*time.Second, "run length")
		rf        = flag.Int("rf", 1, "replication factor")
		writes    = flag.Bool("write-heavy", false, "use the write-heavy (spike) mix")
		seed      = flag.Int64("seed", 42, "workload seed")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6061; empty disables)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("scads-loadgen: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("scads-loadgen: pprof: %v", err)
			}
		}()
	}

	clk := clock.NewReal()
	dir := cluster.NewDirectory(clk)
	transport := rpc.NewTCPTransport()
	defer transport.Close()

	addrs := strings.Split(*nodes, ",")
	for i, addr := range addrs {
		id := fmt.Sprintf("node-%d", i+1)
		// Verify reachability before registering.
		resp, err := transport.Call(addr, rpc.Request{Method: rpc.MethodPing})
		if err != nil {
			log.Fatalf("scads-loadgen: node %s unreachable: %v", addr, err)
		}
		log.Printf("connected to %s (%s)", addr, resp.Value)
		dir.Join(id, addr)
		dir.MarkUp(id)
	}

	c, err := scads.Open(scads.Config{
		Clock:             clk,
		Transport:         transport,
		Directory:         dir,
		ReplicationFactor: *rf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.DefineSchema(socialDDL); err != nil {
		log.Fatal(err)
	}
	// Background replication and index maintenance.
	c.StartBackground(2)

	mix := workload.ReadHeavyMix
	if *writes {
		mix = workload.WriteHeavyMix
	}
	gen := workload.NewSocial(*seed, *users, 5000, mix)

	log.Printf("seeding %d users, ~%d friends each...", *users, *friends)
	for i := 0; i < *users; i++ {
		if err := c.Insert("users", gen.ProfileRow(i)); err != nil {
			log.Fatalf("seed user %d: %v", i, err)
		}
	}
	for _, e := range gen.SeedGraph(*friends) {
		if err := c.Insert("friendships", scads.Row{"f1": e[0], "f2": e[1]}); err != nil {
			log.Fatalf("seed edge: %v", err)
		}
	}
	log.Printf("seeded; running %v at %.0f req/s", *duration, *rate)

	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	report := time.NewTicker(5 * time.Second)
	defer report.Stop()

	var ops int64
	for time.Now().Before(deadline) {
		select {
		case <-ticker.C:
			issue(c, gen.Next())
			ops++
		case <-report.C:
			iv := c.Monitor().Roll()
			log.Printf("%s", iv)
		}
	}
	iv := c.Monitor().Roll()
	sum := c.Monitor().Summary()
	fmt.Printf("\nfinal: ops=%d last-interval=%s total-requests=%d failures=%d\n",
		ops, iv, sum.TotalRequests, sum.TotalFailures)
	st := c.Stats()
	fmt.Printf("replication: delivered=%d violations=%d pending=%d; maintenance pending=%d\n",
		st.Replication.Delivered, st.Replication.Violations, st.Replication.Pending, st.Maintenance)
	fmt.Printf("batching: calls=%d envelopes=%d coalesced=%d\n",
		st.Batching.Calls, st.Batching.Envelopes, st.Batching.Batched)
}

func issue(c *scads.Cluster, op workload.Op) {
	var err error
	switch op.Kind {
	case workload.OpViewProfile:
		_, err = c.Query("findUser", map[string]any{"user": op.UserID})
	case workload.OpViewFriends:
		_, err = c.Query("friends", map[string]any{"user": op.UserID})
	case workload.OpViewBirthdays:
		_, err = c.Query("friendsWithUpcomingBirthdays", map[string]any{"user": op.UserID})
	case workload.OpAddFriend:
		err = c.Insert("friendships", scads.Row{"f1": op.UserID, "f2": op.Friend})
	case workload.OpRemoveFriend:
		err = c.Delete("friendships", scads.Row{"f1": op.UserID, "f2": op.Friend})
	case workload.OpUpdateProfile, workload.OpNewUser:
		err = c.Insert("users", op.Row)
	}
	if err != nil {
		log.Printf("op %v: %v", op.Kind, err)
	}
}
