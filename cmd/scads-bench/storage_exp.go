package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"scads"
	"scads/internal/expgrid"
	"scads/internal/migration"
	"scads/internal/planner"
	"scads/internal/record"
	"scads/internal/storage"
)

// runE17 is the storage-engine raw-speed experiment behind the SSTable
// block cache and background size-tiered compaction. Three phases:
//
//  1. Cache effectiveness: zipfian point reads plus range scans over a
//     flushed multi-table namespace under concurrent writes, with the
//     decoded-block cache warm versus the uncached ablation
//     (BlockCacheBytes: 0). Gates the hit ratio, the warm p99 read
//     latency, and the warm-vs-ablation speedup.
//  2. Correctness under churn: acknowledged-write verification while
//     background tier compaction and range truncation race the
//     readers. Wrong or missing reads are hard-zero gates.
//  3. Fence interaction: online migrations over disk-backed,
//     rate-limited-compaction nodes; the fence pause must stay inside
//     the e12 bound even with the storage engine compacting under the
//     handoff.
//
// Grid parameters: keys, value_size, reads, zipf_s, write_fraction
// (YCSB-style read/write mix in the measured phase; 0 reproduces the
// historical read-only measurement), block_cache_mb. All phase RNGs
// derive from the row seed, so a fixed-seed row replays exactly.
func runE17(p expgrid.Params) (expgrid.Metrics, error) {
	cfg := e17Config{
		keys:          p.Int("keys"),
		valueSize:     p.Int("value_size"),
		reads:         p.Int("reads"),
		zipfS:         p.Get("zipf_s"),
		writeFraction: p.Get("write_fraction"),
		cacheBytes:    int64(p.Get("block_cache_mb") * (1 << 20)),
		seed:          p.Seed,
	}
	switch {
	case cfg.keys < 1000 || cfg.keys > 999999:
		return nil, fmt.Errorf("e17: keys=%d outside 1000..999999 (6-digit key space)", cfg.keys)
	case cfg.valueSize < 8:
		return nil, fmt.Errorf("e17: value_size=%d must be >= 8 (values embed the key ordinal)", cfg.valueSize)
	case cfg.reads < 1000:
		return nil, fmt.Errorf("e17: reads=%d must be >= 1000", cfg.reads)
	case cfg.zipfS <= 1:
		return nil, fmt.Errorf("e17: zipf_s=%g must be > 1", cfg.zipfS)
	case cfg.writeFraction < 0 || cfg.writeFraction > 0.9:
		return nil, fmt.Errorf("e17: write_fraction=%g outside 0..0.9", cfg.writeFraction)
	case cfg.cacheBytes < 1<<20:
		return nil, fmt.Errorf("e17: block_cache_mb must be >= 1")
	}

	hitRatio, warmP99, scanP99, speedup, stallP99 := e17CacheEffectiveness(cfg)
	wrong, missing := e17CorrectnessChurn(cfg.seed)
	fenceP50 := e17FenceUnderCompaction()

	metrics := expgrid.Metrics{
		"block_cache_hit_ratio":    hitRatio,
		"point_read_p99_us":        float64(warmP99.Microseconds()),
		"scan100_p99_us":           float64(scanP99.Microseconds()),
		"warm_speedup_vs_uncached": speedup,
		"write_stall_p99_us":       float64(stallP99.Microseconds()),
		"wrong_reads":              float64(wrong),
		"missing_reads":            float64(missing),
		"fence_pause_p50_us":       float64(fenceP50.Microseconds()),
	}
	if wrong > 0 || missing > 0 {
		log.Fatalf("e17: STORAGE ENGINE RETURNED BAD DATA UNDER CHURN: wrong=%d missing=%d", wrong, missing)
	}
	fmt.Println("\nthe decoded-block cache turns the repeated-read hot path into a map")
	fmt.Println("lookup, size-tiered background compaction keeps write stalls and")
	fmt.Println("fence pauses bounded, and the churn phase shows the fast path never")
	fmt.Println("trades away read-your-acknowledged-writes correctness.")
	return metrics, nil
}

// e17Config carries the grid parameters through the three phases.
type e17Config struct {
	keys, valueSize, reads int
	zipfS, writeFraction   float64
	cacheBytes             int64
	seed                   int64
}

func e17Key(i int) []byte { return []byte(fmt.Sprintf("user%06d", i)) }

func e17Value(i, valueSize int) []byte {
	v := make([]byte, valueSize)
	copy(v, strconv.Itoa(i))
	return v
}

// e17Workload loads a multi-table namespace and runs the zipfian
// read+scan mix (plus write_fraction in-line writes) against it under
// a concurrent writer, returning point read, scan and put latencies
// plus the block-cache hit ratio (0 for the ablation).
func e17Workload(cfg e17Config, blockCacheBytes int64) (pointLat, scanLat, putLat []time.Duration, hitRatio float64) {
	dir, err := os.MkdirTemp("", "scads-e17-*")
	must(err)
	defer os.RemoveAll(dir)
	e, err := storage.Open(storage.Options{
		Dir:             dir,
		MemtableBytes:   256 << 10,
		MaxTables:       6,
		NodeID:          1,
		CacheBytes:      -1, // isolate the block cache: no exact-key layer
		BlockCacheBytes: blockCacheBytes,
	})
	must(err)
	defer e.Close()
	ns, err := e.Namespace("bench")
	must(err)

	// Load in key order; the 256 KiB memtable flushes dozens of tables
	// and background compaction tiers them down to the MaxTables budget.
	for i := 0; i < cfg.keys; i++ {
		_, err := ns.Put(e17Key(i), e17Value(i, cfg.valueSize))
		must(err)
	}
	must(ns.Flush())
	deadline := time.Now().Add(10 * time.Second)
	for ns.TableCount() > 6 && time.Now().Before(deadline) {
		ns.WaitCompaction()
		time.Sleep(time.Millisecond)
	}

	// Concurrent writer: keeps flush/compaction churn alive during the
	// read measurement and times each put for the stall metric.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var putMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.seed*1000 + 7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Intn(cfg.keys)
			t := time.Now()
			_, err := ns.Put(e17Key(i), e17Value(i, cfg.valueSize))
			d := time.Since(t)
			must(err)
			putMu.Lock()
			putLat = append(putLat, d)
			putMu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	rng := rand.New(rand.NewSource(cfg.seed*1000 + 42))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.keys-1))
	// mixRng decides read-vs-write per measured op (YCSB-style); a
	// separate stream so write_fraction=0 replays the historical
	// read-only key sequence exactly.
	mixRng := rand.New(rand.NewSource(cfg.seed*1000 + 43))
	// Warm pass: populate whatever cache is configured.
	for i := 0; i < cfg.reads/4; i++ {
		_, _, err := ns.Get(e17Key(int(zipf.Uint64())))
		must(err)
	}
	pointLat = make([]time.Duration, 0, cfg.reads)
	for i := 0; i < cfg.reads; i++ {
		if i%50 == 49 {
			// A bounded contiguous scan rides along every 50th op.
			startKey := int(zipf.Uint64())
			n := 0
			t := time.Now()
			must(ns.ScanLive(e17Key(startKey), nil, func(record.Record) bool {
				n++
				return n < 100
			}))
			scanLat = append(scanLat, time.Since(t))
			continue
		}
		if cfg.writeFraction > 0 && mixRng.Float64() < cfg.writeFraction {
			// In-line write to a zipfian key: the mixed workload hits
			// the same hot set the reads do, so cache invalidation and
			// memtable pressure land where they hurt.
			k := int(zipf.Uint64())
			t := time.Now()
			_, err := ns.Put(e17Key(k), e17Value(k, cfg.valueSize))
			d := time.Since(t)
			must(err)
			putMu.Lock()
			putLat = append(putLat, d)
			putMu.Unlock()
			continue
		}
		key := e17Key(int(zipf.Uint64()))
		t := time.Now()
		_, ok, err := ns.Get(key)
		pointLat = append(pointLat, time.Since(t))
		must(err)
		if !ok {
			log.Fatalf("e17: loaded key %q missing", key)
		}
	}
	close(stop)
	wg.Wait()

	if bc := e.BlockCache(); bc != nil {
		st := bc.Stats()
		if total := st.Hits + st.Misses; total > 0 {
			hitRatio = float64(st.Hits) / float64(total)
		}
	}
	return pointLat, scanLat, putLat, hitRatio
}

func e17CacheEffectiveness(cfg e17Config) (hitRatio float64, warmP99, scanP99 time.Duration, speedup float64, stallP99 time.Duration) {
	if cfg.writeFraction > 0 {
		fmt.Printf("phase 1: %d zipfian ops (%.0f%% writes) over %d keys, warm block cache vs uncached ablation\n\n",
			cfg.reads, cfg.writeFraction*100, cfg.keys)
	} else {
		fmt.Printf("phase 1: %d zipfian reads + scans over %d keys, warm block cache vs uncached ablation\n\n", cfg.reads, cfg.keys)
	}
	warmPoint, warmScan, warmPut, warmRatio := e17Workload(cfg, cfg.cacheBytes)
	ablPoint, ablScan, _, _ := e17Workload(cfg, 0)

	warmMean, warmP99v := latSummary(warmPoint)
	ablMean, ablP99 := latSummary(ablPoint)
	warmScanMean, warmScanP99 := latSummary(warmScan)
	ablScanMean, _ := latSummary(ablScan)
	_, stall := latSummary(warmPut)
	// The ≥5x acceptance gate is on point reads: a warm hit replaces a
	// pread + CRC-checked decode with a map lookup and a binary search.
	speedup = float64(ablMean) / float64(warmMean)

	fmt.Printf("  %-34s %12.3f\n", "block-cache hit ratio (warm)", warmRatio)
	fmt.Printf("  %-34s %12v\n", "warm point read mean", warmMean.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12v\n", "warm point read p99", warmP99v.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12v\n", "uncached point read mean", ablMean.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12v\n", "uncached point read p99", ablP99.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12.2fx\n", "warm point speedup vs uncached", speedup)
	fmt.Printf("  %-34s %12v\n", "warm 100-key scan mean", warmScanMean.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12v\n", "uncached 100-key scan mean", ablScanMean.Round(time.Nanosecond))
	fmt.Printf("  %-34s %12v\n", "write stall p99 (warm run)", stall.Round(time.Microsecond))
	return warmRatio, warmP99v, warmScanP99, speedup, stall
}

func latSummary(lat []time.Duration) (mean, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return sum / time.Duration(len(sorted)), sorted[len(sorted)*99/100]
}

// e17CorrectnessChurn races verified readers against background tier
// compaction and range truncation; every read of an acknowledged key
// must return a value at least as new as its last acknowledged write,
// and truncated ranges must read empty. Reader RNGs derive from the
// row seed.
func e17CorrectnessChurn(seed int64) (wrong, missing int64) {
	fmt.Println("\nphase 2: acknowledged-read verification under compaction + truncation churn")
	dir, err := os.MkdirTemp("", "scads-e17-*")
	must(err)
	defer os.RemoveAll(dir)
	e, err := storage.Open(storage.Options{
		Dir:             dir,
		MemtableBytes:   16 << 10, // constant flush pressure
		MaxTables:       3,
		NodeID:          1,
		CacheBytes:      -1,
		BlockCacheBytes: 8 << 20,
	})
	must(err)
	ns, err := e.Namespace("churn")
	must(err)

	const nKeys = 128
	key := func(i int) []byte { return []byte(fmt.Sprintf("h-%04d", i)) }
	var acked [nKeys]atomic.Int64
	for i := 0; i < nKeys; i++ {
		_, err := ns.Put(key(i), []byte("00000001"))
		must(err)
		acked[i].Store(1)
	}

	var wrongN, missingN, reads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		for c := int64(2); ; c++ {
			for i := 0; i < nKeys; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, err := ns.Put(key(i), []byte(fmt.Sprintf("%08d", c)))
				must(err)
				acked[i].Store(c)
			}
		}
	}()
	for g := 0; g < 2; g++ { // verified readers
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(nKeys)
				lo := acked[i].Load()
				v, ok, err := ns.Get(key(i))
				must(err)
				reads.Add(1)
				if !ok {
					missingN.Add(1)
					continue
				}
				if c, perr := strconv.ParseInt(string(v), 10, 64); perr != nil || c < lo {
					wrongN.Add(1)
				}
			}
		}(seed*1000 + int64(g) + 99)
	}
	wg.Add(1)
	go func() { // truncator on a disjoint prefix
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < 32; i++ {
				_, err := ns.Put([]byte(fmt.Sprintf("t-%04d", i)), []byte(strconv.Itoa(round)))
				must(err)
			}
			_, err := ns.TruncateRange([]byte("t-"), []byte("t."))
			must(err)
			for i := 0; i < 32; i++ {
				if _, ok, gerr := ns.Get([]byte(fmt.Sprintf("t-%04d", i))); gerr != nil || ok {
					wrongN.Add(1) // truncated range resurrected
				}
			}
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
	must(e.Close())

	fmt.Printf("  %-34s %12d\n", "verified reads", reads.Load())
	fmt.Printf("  %-34s %12d\n", "wrong reads", wrongN.Load())
	fmt.Printf("  %-34s %12d\n", "missing reads", missingN.Load())
	return wrongN.Load(), missingN.Load()
}

// e17FenceUnderCompaction reruns the e12 fence-pause measurement over
// disk-backed nodes whose storage engines are actively flushing and
// compacting (rate-limited), proving a background tier merge can never
// stall a migration fence handoff: cancellation is bounded by one
// rate-limiter slice, not by a merge's runtime.
func e17FenceUnderCompaction() time.Duration {
	fmt.Println("\nphase 3: migration fence pause with disk-backed, compacting storage")
	dir, err := os.MkdirTemp("", "scads-e17-*")
	must(err)
	defer os.RemoveAll(dir)
	lc, err := scads.NewLocalCluster(3, scads.Config{
		NodeStorage: storage.Options{
			Dir:                 dir,
			MemtableBytes:       32 << 10, // flush often: tables churn during handoffs
			MaxTables:           3,
			CompactionRateBytes: 256 << 10, // slow merges: fences must cancel, not wait
		},
	})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	must(lc.SplitTable("users", "user1000", "user2000", "user3000"))

	type rkey string
	var (
		pauseMu  sync.Mutex
		fencedAt = map[rkey]time.Time{}
		pauses   []time.Duration
	)
	lc.Migrations().OnPhase = func(ev migration.Event) {
		k := rkey(ev.Namespace + "\x00" + string(ev.Start))
		pauseMu.Lock()
		defer pauseMu.Unlock()
		switch ev.Phase {
		case migration.PhaseFence:
			fencedAt[k] = time.Now()
		case migration.PhaseFlip:
			if t0, ok := fencedAt[k]; ok {
				pauses = append(pauses, time.Since(t0))
				delete(fencedAt, k)
			}
		}
	}

	// Writers keep every node flushing while ranges move.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("user%04d", w*1000+i%200)
				must(lc.Insert("users", scads.Row{
					"id": id, "name": fmt.Sprintf("w%d-r%d", w, i), "birthday": i%365 + 1,
				}))
			}
		}(w)
	}

	pns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(pns)
	nodeIDs := lc.NodeIDs()
	migrations := 0
	for r := 0; r < 6; r++ {
		for i, rng := range m.Ranges() {
			k := rng.Start
			if k == nil {
				k = []byte{}
			}
			must(lc.MoveRange(pns, k, []string{nodeIDs[(r+i)%len(nodeIDs)]}))
			migrations++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	var p50 time.Duration
	if len(pauses) > 0 {
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		p50 = pauses[len(pauses)/2]
		fmt.Printf("  %-34s %12d\n", "migrations under compaction", migrations)
		fmt.Printf("  %-34s %12v\n", "fence pause p50", p50.Round(time.Microsecond))
		fmt.Printf("  %-34s %12v\n", "fence pause max", pauses[len(pauses)-1].Round(time.Microsecond))
	}
	return p50
}
