package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"
	"time"

	"scads"
	"scads/internal/expgrid"
	"scads/internal/migration"
	"scads/internal/planner"
)

// runE12 is the writes-during-migration experiment: writer goroutines
// hammer inserts, updates and deletes into four ranges while every
// range is migrated across the node set, repeatedly, under load. It
// proves the online migration protocol's two claims:
//
//   - zero lost updates: every write acknowledged at any point during
//     the run — including writes racing the snapshot copy, the delta
//     catch-up and the fence pause — is readable afterwards with
//     exactly its last acknowledged content, and every acknowledged
//     delete stays deleted;
//   - bounded fence pause: writes are never rejected, only delayed,
//     and the per-migration write-fence pause (fence install to
//     routing flip) stays in the low milliseconds because the fenced
//     drain only ships one final small delta.
//
// The run aborts loudly on any lost, corrupted or resurrected record,
// so capturing this experiment in CI turns the guarantee into a gate.
//
// Grid parameters: nodes, writers, ops_per_writer, migration_rounds,
// value_size (pads the name column so large-value rows exercise the
// snapshot/delta page budgets — the e12-bigval grid row).
func runE12(p expgrid.Params) (expgrid.Metrics, error) {
	var (
		nodes        = p.Int("nodes")
		writers      = p.Int("writers")
		opsPerWriter = p.Int("ops_per_writer")
		rounds       = p.Int("migration_rounds")
		valueSize    = p.Int("value_size")
	)
	if nodes < 1 || writers < 1 || writers > 9 || opsPerWriter < 10 || rounds < 1 {
		return nil, fmt.Errorf("e12: invalid params: nodes=%d writers=%d (1-9) ops_per_writer=%d (>=10) migration_rounds=%d", nodes, writers, opsPerWriter, rounds)
	}
	// Writer w at round r writes this value into the name column; the
	// verification pass recomputes it from the key's writer digit and
	// the last acknowledged round.
	name := func(w, round int) string {
		s := fmt.Sprintf("w%d-r%d", w, round)
		if valueSize > len(s) {
			s += strings.Repeat(".", valueSize-len(s))
		}
		return s
	}

	lc, err := scads.NewLocalCluster(nodes, scads.Config{})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	must(lc.SplitTable("users", "user1000", "user2000", "user3000"))
	ns := planner.TableNamespace("users")

	// Track each migration's fence pause from its phase events.
	type rkey string
	var (
		pauseMu  sync.Mutex
		fencedAt = map[rkey]time.Time{}
		pauses   []time.Duration
	)
	lc.Migrations().OnPhase = func(ev migration.Event) {
		k := rkey(ev.Namespace + "\x00" + string(ev.Start))
		pauseMu.Lock()
		defer pauseMu.Unlock()
		switch ev.Phase {
		case migration.PhaseFence:
			fencedAt[k] = time.Now()
		case migration.PhaseFlip:
			if t0, ok := fencedAt[k]; ok {
				pauses = append(pauses, time.Since(t0))
				delete(fencedAt, k)
			}
		}
	}

	type ackedState struct {
		round   int
		deleted bool
	}
	var (
		ackMu     sync.Mutex
		lastAcked = map[string]ackedState{}
		acked     int
	)

	// Seed every range before the churn starts, so snapshots ship real
	// pages rather than migrating empty ranges.
	for w := 0; w < writers; w++ {
		for i := 0; i < 50; i++ {
			id := fmt.Sprintf("user%04d", w*1000+i)
			must(lc.Insert("users", scads.Row{
				"id": id, "name": name(w, -1), "birthday": 1,
			}))
			lastAcked[id] = ackedState{round: -1}
			acked++
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				id := fmt.Sprintf("user%04d", w*1000+i%50)
				if i%10 == 9 {
					must(lc.Delete("users", scads.Row{"id": id}))
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i, deleted: true}
					acked++
					ackMu.Unlock()
					continue
				}
				must(lc.Insert("users", scads.Row{
					"id": id, "name": name(w, i), "birthday": i%365 + 1,
				}))
				ackMu.Lock()
				lastAcked[id] = ackedState{round: i}
				acked++
				ackMu.Unlock()
			}
		}(w)
	}

	// Concurrently cycle every range across the node set, paced so the
	// churn spans the writers' whole run — every migration races live
	// inserts, updates and deletes.
	m, _ := lc.Router().Map(ns)
	nodeIDs := lc.NodeIDs()
	migrations := 0
	for r := 0; r < rounds; r++ {
		for i, rng := range m.Ranges() {
			key := rng.Start
			if key == nil {
				key = []byte{}
			}
			must(lc.MoveRange(ns, key, []string{nodeIDs[(r+i)%len(nodeIDs)]}))
			migrations++
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	elapsed := time.Since(start)
	must(lc.FlushAll())

	// Verification: every acknowledged write readable, every
	// acknowledged delete dead.
	lost, wrong, resurrected := 0, 0, 0
	for id, want := range lastAcked {
		row, found, err := lc.Get("users", scads.Row{"id": id})
		must(err)
		switch {
		case want.deleted && found:
			resurrected++
		case !want.deleted && !found:
			lost++
		case !want.deleted && found:
			if row["name"] != name(int(id[4]-'0'), want.round) {
				wrong++
			}
		}
	}

	st := lc.MigrationStats()
	var p50Pause time.Duration
	if len(pauses) > 0 {
		sorted := append([]time.Duration(nil), pauses...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p50Pause = sorted[len(sorted)/2]
	}
	metrics := expgrid.Metrics{
		"acked_writes":       float64(acked),
		"lost_updates":       float64(lost),
		"corrupted_updates":  float64(wrong),
		"resurrected_dels":   float64(resurrected),
		"migrations":         float64(migrations),
		"fence_pause_p50_us": float64(p50Pause.Microseconds()),
	}
	fmt.Printf("%d writers x %d ops against 4 ranges; %d online migrations in %v\n\n",
		writers, opsPerWriter, migrations, elapsed.Truncate(time.Millisecond))
	fmt.Printf("  %-34s %12d\n", "acknowledged writes+deletes", acked)
	fmt.Printf("  %-34s %12d\n", "lost updates", lost)
	fmt.Printf("  %-34s %12d\n", "corrupted updates", wrong)
	fmt.Printf("  %-34s %12d\n", "resurrected deletes", resurrected)
	fmt.Printf("  %-34s %12d\n", "snapshot records shipped", st.SnapshotRecords)
	fmt.Printf("  %-34s %12d\n", "delta records shipped", st.DeltaRecords)
	fmt.Printf("  %-34s %12d\n", "delta rounds", st.DeltaRounds)
	fmt.Printf("  %-34s %12d\n", "write-fence pauses", st.FencePauses)
	if len(pauses) > 0 {
		sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
		var sum time.Duration
		for _, p := range pauses {
			sum += p
		}
		fmt.Printf("  %-34s %12v\n", "fence pause p50", pauses[len(pauses)/2].Round(time.Microsecond))
		fmt.Printf("  %-34s %12v\n", "fence pause max", pauses[len(pauses)-1].Round(time.Microsecond))
		fmt.Printf("  %-34s %12v\n", "fence pause mean", (sum / time.Duration(len(pauses))).Round(time.Microsecond))
	}

	if lost > 0 || wrong > 0 || resurrected > 0 {
		log.Fatalf("e12: ONLINE MIGRATION LOST DATA: lost=%d corrupted=%d resurrected=%d",
			lost, wrong, resurrected)
	}
	fmt.Println("\nevery write acknowledged during the copy window, the delta chase and")
	fmt.Println("the fence pause is readable after the handoff: rebalance, decommission")
	fmt.Println("and elastic scale-down are no longer data-loss events under load —")
	fmt.Println("the precondition for the paper's continuous repartitioning (§3.3).")

	// Sanity check the map after the rounds of churn.
	must(mapValidate(lc, ns))
	return metrics, nil
}

func mapValidate(lc *scads.LocalCluster, ns string) error {
	m, ok := lc.Router().Map(ns)
	if !ok {
		return fmt.Errorf("no partition map for %s", ns)
	}
	return m.Validate()
}
