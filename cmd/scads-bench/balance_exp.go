package main

import (
	"fmt"

	"scads"
	"scads/internal/balancer"
	"scads/internal/planner"
)

// runE11 exercises the workload-driven repartitioning of §3.3.1
// ("current workload information will be used to automatically
// configure system parameters such as partitioning"): a skewed
// social workload concentrates on one primary; successive rebalance
// rounds split the hot range at the tracker's median observed key and
// move ranges until primaries spread across the cluster.
func runE11() {
	lc, err := scads.NewLocalCluster(4, scads.Config{})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))

	for i := 0; i < 200; i++ {
		must(lc.Insert("users", scads.Row{
			"id":       fmt.Sprintf("user%04d", i),
			"name":     fmt.Sprintf("User %d", i),
			"birthday": i%365 + 1,
		}))
	}

	ns := planner.TableNamespace("users")
	skew := func() {
		// 80% of traffic on 10% of the keyspace.
		for i := 0; i < 400; i++ {
			for j := 0; j < 4; j++ {
				lc.Get("users", scads.Row{"id": fmt.Sprintf("user%04d", j*5)})
			}
			lc.Get("users", scads.Row{"id": fmt.Sprintf("user%04d", i%200)})
		}
	}
	layout := func() (ranges int, primaries map[string]int) {
		m, _ := lc.Router().Map(ns)
		primaries = map[string]int{}
		for _, rng := range m.Ranges() {
			primaries[rng.Replicas[0]]++
		}
		return m.Len(), primaries
	}

	fmt.Printf("%-8s %8s %10s %8s %8s\n", "round", "ranges", "primaries", "splits", "moves")
	r0, p0 := layout()
	fmt.Printf("%-8s %8d %10d %8s %8s\n", "start", r0, len(p0), "-", "-")
	for round := 1; round <= 3; round++ {
		skew()
		plan, err := lc.Rebalance(scads.BalanceConfig{})
		must(err)
		splits, moves := 0, 0
		for _, a := range plan {
			switch a.Kind {
			case balancer.ActionSplit:
				splits++
			case balancer.ActionMove:
				moves++
			}
		}
		r, p := layout()
		fmt.Printf("round-%d  %8d %10d %8d %8d\n", round, r, len(p), splits, moves)
	}

	_, p := layout()
	fmt.Println("\nprimary ranges per node after rebalancing:")
	for node, n := range p {
		fmt.Printf("  %-10s %d\n", node, n)
	}
	fmt.Println("\nthe hot range is split at the tracker's median observed key, then")
	fmt.Println("whole ranges move until no node exceeds 1.5x the mean load — all 200")
	fmt.Println("rows stay readable throughout (verified by the test suite).")
}
