package main

import (
	"errors"
	"fmt"
	"time"

	"scads"
	"scads/internal/clock"
	"scads/internal/planner"
)

// runE10 reproduces §3.3.1's contention example end-to-end: two
// datacenters disconnect (modelled as a severed replication link plus
// a crashed primary), making the availability SLA and the staleness
// bound unsatisfiable at once. The namespace's declared priority order
// decides the outcome; the contention is noted for the
// director/operators either way.
func runE10() {
	run := func(priority string) (served, failed, stale int, noted scads.ContentionStats) {
		vc := clock.NewVirtual(t0)
		lc, err := scads.NewLocalCluster(2, scads.Config{Clock: vc, ReplicationFactor: 2})
		must(err)
		defer lc.Close()
		must(lc.DefineSchema(socialDDL))
		must(lc.ApplyConsistency(fmt.Sprintf(
			"namespace users { staleness: 5s; priority: %s; }", priority)))

		m, _ := lc.Router().Map(planner.TableNamespace("users"))
		primary := m.Ranges()[0].Replicas[0]
		secondary := m.Ranges()[0].Replicas[1]

		// Seed v1 everywhere, then partition and write v2.
		must(lc.Insert("users", scads.Row{"id": "a", "name": "v1", "birthday": 1}))
		lc.Pump().Drain(100)
		lc.PartitionReplica(secondary)
		must(lc.Insert("users", scads.Row{"id": "a", "name": "v2", "birthday": 1}))
		lc.Pump().Drain(100)
		vc.Advance(10 * time.Second)
		lc.CrashNode(primary)

		for i := 0; i < 100; i++ {
			r, _, err := lc.Get("users", scads.Row{"id": "a"})
			switch {
			case errors.Is(err, scads.ErrStaleReplicas):
				failed++
			case err == nil:
				served++
				if r["name"] == "v1" {
					stale++
				}
			}
		}
		return served, failed, stale, lc.Contention()
	}

	fmt.Printf("%-36s %8s %8s %8s %14s\n",
		"priority order", "served", "failed", "stale", "noted-events")
	for _, prio := range []string{
		"availability > read-consistency",
		"read-consistency > availability",
	} {
		served, failed, stale, noted := run(prio)
		fmt.Printf("%-36s %8d %8d %8d %14d\n", prio, served, failed, stale, noted.Total)
	}
	fmt.Println("\navailability-first keeps serving (every answer is the stale v1);")
	fmt.Println("read-consistency-first fails every read instead. Both orders note the")
	fmt.Println("contention so the director/operators can re-provision (§3.3.1).")
}
