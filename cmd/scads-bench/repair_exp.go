package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"scads"
	"scads/internal/expgrid"
	"scads/internal/planner"
	"scads/internal/repair"
)

// runE13 is the crash-recovery experiment: sustained replicated writes
// while a storage node is killed and later resurrected, with the
// self-healing loop (failure detector → primary failover → RF repair)
// doing every bit of the recovery. It proves three claims and aborts
// loudly if any fails:
//
//   - zero acknowledged-write loss: every write acknowledged at any
//     point — before the crash, during the failover window, during RF
//     repair — is readable afterwards with exactly its last
//     acknowledged content, and acknowledged deletes stay deleted;
//   - self-healing writes: writes to the crashed node's ranges succeed
//     again without manual intervention (they stall through the
//     failover window via the coordinator's down-retry loop; the
//     experiment reports that unavailability window, measured by a
//     2ms-interval write prober);
//   - RF restoration: every range is back at full replication strength
//     on live nodes before the run ends, and the resurrected node
//     rejoins as a replica target.
//
// Grid parameters: nodes, rf, writers.
func runE13(p expgrid.Params) (expgrid.Metrics, error) {
	var (
		nodes   = p.Int("nodes")
		rf      = p.Int("rf")
		writers = p.Int("writers")
	)
	if nodes < 2 || rf < 1 || rf > nodes || writers < 1 || writers > 9 {
		return nil, fmt.Errorf("e13: invalid params: nodes=%d (>=2) rf=%d (1..nodes) writers=%d (1-9)", nodes, rf, writers)
	}
	lc, err := scads.NewLocalCluster(nodes, scads.Config{
		ReplicationFactor: rf,
		Repair: repair.Config{
			SweepInterval:    10 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
			ReplaceAfter:     50 * time.Millisecond,
		},
	})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	must(lc.SplitTable("users", "user1000", "user2000", "user3000"))
	must(lc.SpreadAll())
	ns := planner.TableNamespace("users")

	// Phase-event latencies for the incident report.
	var (
		evMu       sync.Mutex
		crashedAt  time.Time
		detectedAt time.Time
		failoverAt time.Time
		repairedAt time.Time
		victim     string
	)
	lc.Repairs().OnEvent = func(ev repair.Event) {
		evMu.Lock()
		defer evMu.Unlock()
		switch ev.Kind {
		case repair.EventNodeDown:
			if ev.Node == victim && detectedAt.IsZero() {
				detectedAt = time.Now()
			}
		case repair.EventFailover:
			if failoverAt.IsZero() {
				failoverAt = time.Now()
			}
		case repair.EventRepairDone:
			repairedAt = time.Now()
		}
	}
	lc.StartBackground(4)
	defer lc.StopBackground()

	type ackedState struct {
		round   int
		deleted bool
	}
	var (
		ackMu     sync.Mutex
		lastAcked = map[string]ackedState{}
		acked     atomic.Int64
		stop      atomic.Bool
	)

	for w := 0; w < writers; w++ {
		for i := 0; i < 40; i++ {
			id := fmt.Sprintf("user%04d", w*1000+i)
			must(lc.Insert("users", scads.Row{
				"id": id, "name": fmt.Sprintf("w%d-r%d", w, -1), "birthday": 1,
			}))
			lastAcked[id] = ackedState{round: -1}
			acked.Add(1)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := fmt.Sprintf("user%04d", w*1000+i%40)
				if i%10 == 9 {
					must(lc.Delete("users", scads.Row{"id": id}))
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i, deleted: true}
					ackMu.Unlock()
				} else {
					must(lc.Insert("users", scads.Row{
						"id": id, "name": fmt.Sprintf("w%d-r%d", w, i), "birthday": i%365 + 1,
					}))
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i}
					ackMu.Unlock()
				}
				acked.Add(1)
			}
		}(w)
	}

	// Pick the victim: the primary of the first users range, so the
	// crash provably hits the write path.
	m, _ := lc.Router().Map(ns)
	victimID := m.Ranges()[0].Replicas[0]
	evMu.Lock()
	victim = victimID
	evMu.Unlock()

	// The prober hammers one key homed in the victim's range and
	// records the longest gap between consecutive successful acks —
	// the client-visible write-unavailability window around the crash.
	var (
		probeStop atomic.Bool
		windowNs  atomic.Int64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastOK := time.Now()
		for !probeStop.Load() {
			err := lc.Insert("users", scads.Row{"id": "user0000", "name": "probe", "birthday": 1})
			now := time.Now()
			if err == nil {
				if gap := now.Sub(lastOK).Nanoseconds(); gap > windowNs.Load() {
					windowNs.Store(gap)
				}
				lastOK = now
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(200 * time.Millisecond) // steady state under load
	evMu.Lock()
	crashedAt = time.Now()
	evMu.Unlock()
	lc.CrashNode(victimID)

	// Sustain the write load through detection, failover and repair.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := lc.RepairStats()
		evMu.Lock()
		done := st.Failovers > 0 && st.RepairsDone > 0 && !repairedAt.IsZero()
		evMu.Unlock()
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)

	// Resurrect the victim: it must rejoin as a replica target (or be
	// torn down and re-enter as a spare) with no operator action.
	lc.RecoverNode(victimID)
	time.Sleep(300 * time.Millisecond)

	probeStop.Store(true)
	stop.Store(true)
	wg.Wait()

	// Quiesce: repair settles, replication and index maintenance
	// drain.
	settle := time.Now().Add(10 * time.Second)
	for !rfRestoredE13(lc, rf) && time.Now().Before(settle) {
		time.Sleep(10 * time.Millisecond)
	}
	lc.Repairs().Quiesce(10 * time.Second)
	must(lc.FlushAll())

	// The probe key's bookkeeping: it was last written by the prober.
	ackMu.Lock()
	delete(lastAcked, "user0000")
	ackMu.Unlock()

	lost, wrong, resurrected := 0, 0, 0
	for id, want := range lastAcked {
		row, found, err := lc.Get("users", scads.Row{"id": id})
		must(err)
		switch {
		case want.deleted && found:
			resurrected++
		case !want.deleted && !found:
			lost++
		case !want.deleted && found:
			if row["name"] != fmt.Sprintf("w%c-r%d", id[4], want.round) {
				wrong++
			}
		}
	}

	st := lc.RepairStats()
	evMu.Lock()
	detect := detectedAt.Sub(crashedAt)
	failover := failoverAt.Sub(crashedAt)
	evMu.Unlock()
	metrics := expgrid.Metrics{
		"acked_writes":      float64(acked.Load()),
		"lost_updates":      float64(lost),
		"corrupted_updates": float64(wrong),
		"resurrected_dels":  float64(resurrected),
		"failovers":         float64(st.Failovers),
		"rf_repairs_done":   float64(st.RepairsDone),
		"detect_ms":         float64(detect.Milliseconds()),
		"write_unavail_ms":  float64(time.Duration(windowNs.Load()).Milliseconds()),
	}
	fmt.Printf("%d writers under sustained load; primary %s killed and resurrected; RF=%d over %d nodes\n\n",
		writers, victimID, rf, nodes)
	fmt.Printf("  %-34s %12d\n", "acknowledged writes+deletes", acked.Load())
	fmt.Printf("  %-34s %12d\n", "lost updates", lost)
	fmt.Printf("  %-34s %12d\n", "corrupted updates", wrong)
	fmt.Printf("  %-34s %12d\n", "resurrected deletes", resurrected)
	fmt.Printf("  %-34s %12v\n", "crash -> detected", detect.Round(time.Millisecond))
	fmt.Printf("  %-34s %12v\n", "crash -> failover flip", failover.Round(time.Millisecond))
	fmt.Printf("  %-34s %12v\n", "write-unavailability window", time.Duration(windowNs.Load()).Round(time.Millisecond))
	fmt.Printf("  %-34s %12d\n", "failovers", st.Failovers)
	fmt.Printf("  %-34s %12d\n", "rf repairs completed", st.RepairsDone)
	fmt.Printf("  %-34s %12d\n", "rejoins of returned nodes", st.Rejoins)
	fmt.Printf("  %-34s %12d\n", "demotions of stale replicas", st.Demotions)

	if lost > 0 || wrong > 0 || resurrected > 0 {
		log.Fatalf("e13: CRASH RECOVERY LOST DATA: lost=%d corrupted=%d resurrected=%d",
			lost, wrong, resurrected)
	}
	if st.Failovers == 0 || st.RepairsDone == 0 {
		log.Fatalf("e13: recovery machinery never engaged: %+v", st)
	}
	if !rfRestoredE13(lc, rf) {
		log.Fatalf("e13: RF not restored: repair stats %+v", st)
	}

	fmt.Println("\nevery write acknowledged before, during and after the crash is")
	fmt.Println("readable with its final content; writes to the dead primary's ranges")
	fmt.Println("resumed without intervention once the detector fired; and replication")
	fmt.Println("strength was rebuilt from surviving replicas — node failures are now")
	fmt.Println("routine events, not data-loss incidents (the director's promise in §1).")
	must(mapValidate(lc, ns))
	return metrics, nil
}

// rfRestoredE13 reports whether every range of every namespace has rf
// distinct serving replicas and no repair job is in flight.
func rfRestoredE13(lc *scads.LocalCluster, rf int) bool {
	if lc.RepairStats().PendingJobs != 0 {
		return false
	}
	for _, ns := range lc.Router().Namespaces() {
		m, ok := lc.Router().Map(ns)
		if !ok {
			return false
		}
		for _, rng := range m.Ranges() {
			if len(rng.Replicas) < rf {
				return false
			}
			seen := map[string]bool{}
			for _, id := range rng.Replicas {
				mem, ok := lc.Directory().Get(id)
				if !ok || mem.Status.String() != "up" || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
	}
	return true
}
