package main

// The experiment grid: e12–e18 register with internal/expgrid as
// parameterized experiments (params in, typed metrics out), and the
// committed experiments.json at the repository root declares which
// rows — base configurations plus workload variants (value sizes,
// skew, mixes, repeats) — one `scads-bench -grid` invocation runs.
// CI's bench-gate is exactly that invocation followed by `-compare`.

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"scads/internal/expgrid"
)

// gridRegistry declares every grid-runnable experiment. Parameter
// defaults reproduce the historical single-shot behavior of each
// `-exp` run, so a grid row with no overrides is the same experiment
// CI has always gated.
func gridRegistry() *expgrid.Registry {
	reg := expgrid.NewRegistry()
	reg.Register(expgrid.Experiment{
		ID:   "e12",
		Name: "Writes during migration: lossless online range handoff",
		Params: []expgrid.ParamSpec{
			{Name: "nodes", Default: 3, Doc: "cluster size"},
			{Name: "writers", Default: 4, Doc: "concurrent writer goroutines (1-9)"},
			{Name: "ops_per_writer", Default: 400, Doc: "insert/delete ops per writer"},
			{Name: "migration_rounds", Default: 10, Doc: "cycles of every range across the node set"},
			{Name: "value_size", Default: 0, Doc: "pad the name column to this many bytes (0 = tiny rows)"},
		},
		Run: runE12,
	})
	reg.Register(expgrid.Experiment{
		ID:   "e13",
		Name: "Crash recovery: failure detector, failover, RF repair under load",
		Params: []expgrid.ParamSpec{
			{Name: "nodes", Default: 4, Doc: "cluster size"},
			{Name: "rf", Default: 2, Doc: "replication factor (<= nodes)"},
			{Name: "writers", Default: 4, Doc: "concurrent writer goroutines (1-9)"},
		},
		Run: runE13,
	})
	reg.Register(expgrid.Experiment{
		ID:   "e14",
		Name: "Scan pipeline: parallel scatter-gather vs sequential; scans under migration + crash",
		Params: []expgrid.ParamSpec{
			{Name: "users", Default: 2400, Doc: "dataset size (multiple of range_size, 1000-9999)"},
			{Name: "range_size", Default: 200, Doc: "rows per partition"},
			{Name: "rtt_ms", Default: 2, Doc: "simulated per-call network latency, milliseconds"},
			{Name: "measure_scans", Default: 40, Doc: "scans per throughput measurement"},
		},
		Run: runE14,
	})
	reg.Register(expgrid.Experiment{
		ID:   "e15",
		Name: "RPC wire: binary multiplexed transport vs gob lockstep (throughput under RTT, allocs/op)",
		Params: []expgrid.ParamSpec{
			{Name: "pipelines", Default: 64, Doc: "concurrent callers sharing the one pipelined conn"},
			{Name: "window_ms", Default: 1500, Doc: "throughput measurement window, milliseconds"},
			{Name: "value_size", Default: 128, Doc: "bytes per record value in the apply payload"},
			{Name: "alloc_calls", Default: 20000, Doc: "round trips per allocation measurement"},
		},
		Run: runE15,
	})
	reg.Register(expgrid.Experiment{
		ID:     "e16",
		Name:   "Elastic autoscaling end-to-end: diurnal / flash-crowd / hotspot-shift, SLO minutes & cost",
		Params: nil, // scenarios are fully declared in code; the row proves bit-identical repeats
		Run:    runE16,
	})
	reg.Register(expgrid.Experiment{
		ID:   "e17",
		Name: "Storage-engine raw speed: block cache hit ratio & speedup, churn correctness, fence pause under compaction",
		Params: []expgrid.ParamSpec{
			{Name: "keys", Default: 20000, Doc: "keys loaded into the namespace"},
			{Name: "value_size", Default: 64, Doc: "bytes per value"},
			{Name: "reads", Default: 40000, Doc: "measured operations in the zipfian mix"},
			{Name: "zipf_s", Default: 1.2, Doc: "zipf skew exponent (> 1; lower = flatter)"},
			{Name: "write_fraction", Default: 0, Doc: "fraction of measured ops that are writes (YCSB-style mix, 0-0.9)"},
			{Name: "block_cache_mb", Default: 64, Doc: "decoded-block cache size for the warm run, MiB"},
		},
		Run: runE17,
	})
	reg.Register(expgrid.Experiment{
		ID:   "e18",
		Name: "Multi-tenant admission: noisy-neighbor SLO isolation, priority-ordered sheds, zero acked loss",
		Params: []expgrid.ParamSpec{
			{Name: "tenants", Default: 4, Doc: "compliant committed tenants with zipf-skewed quotas (2-4)"},
			{Name: "adv_workers", Default: 48, Doc: "unpaced goroutines driving the adversarial tenant"},
			{Name: "quota_ops", Default: 400, Doc: "base ops/sec quota; tenant i gets quota_ops/(i+1)"},
			{Name: "run_ms", Default: 1500, Doc: "flood duration, milliseconds"},
			{Name: "max_inflight", Default: 16, Doc: "coordinator in-flight watermark ceiling"},
			{Name: "slo_ms", Default: 100, Doc: "compliant-tenant p99 write SLO, milliseconds (hard gate)"},
			{Name: "rtt_ms", Default: 2, Doc: "simulated per-call network latency, milliseconds"},
		},
		Run: runE18,
	})
	return reg
}

// defaultParams resolves an experiment's declared defaults with no
// overrides — the legacy `-exp` path.
func defaultParams(exp expgrid.Experiment, seed int64) expgrid.Params {
	return expgrid.NewParams(exp.Params, nil, seed, 0)
}

// runGridCmd is the `-grid` entrypoint: parse and validate the
// committed grid, execute every row (or just -grid-row) with repeats,
// write BENCH_<row>.json grouped summaries plus the schema-validated
// CSVs, and render the markdown report against the committed
// baselines. The report also goes to stdout so a local run is
// readable without opening files.
func runGridCmd(gridPath, rowID, outDir string, minRepeats int, baselineDir string) {
	reg := gridRegistry()
	data, err := os.ReadFile(gridPath)
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	g, err := expgrid.ParseGrid(data, reg)
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	runner := &expgrid.Runner{
		Registry:   reg,
		OutDir:     outDir,
		MinRepeats: minRepeats,
		Logf:       log.Printf,
	}
	res, err := runner.Run(g, rowID)
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	for _, row := range res.Rows {
		writeGroupedBenchSummary(outDir, row)
	}
	baselines := loadRowBaselines(baselineDir, res)
	reportPath := filepath.Join(outDir, "report.md")
	f, err := os.Create(reportPath)
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	if err := expgrid.WriteReport(f, res, baselines); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	log.Printf("grid report: %s", reportPath)
	if err := expgrid.WriteReport(os.Stdout, res, baselines); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
}

// loadRowBaselines reads the committed BENCH_<row>.json baseline for
// every executed row (absent baselines simply leave the row ungated
// in the report; `-compare` applies the same rule).
func loadRowBaselines(baselineDir string, res *expgrid.GridResult) map[string]map[string]expgrid.Baseline {
	out := make(map[string]map[string]expgrid.Baseline)
	for _, row := range res.Rows {
		s, err := readSummary(filepath.Join(baselineDir, "BENCH_"+row.Row.ID+".json"))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		m := make(map[string]expgrid.Baseline, len(s.Metrics))
		for name, bm := range s.Metrics {
			m[name] = expgrid.Baseline{Value: bm.Value, Direction: bm.Direction, Tolerance: bm.Tolerance}
		}
		out[row.Row.ID] = m
	}
	return out
}

// listExperiments prints the catalogue: legacy figure experiments
// first, then every grid-registered experiment with its overridable
// parameters — the reference for writing experiments.json rows.
func listExperiments() {
	fmt.Println("legacy figure experiments (-exp only, not grid-runnable):")
	for _, e := range legacyExperiments {
		fmt.Printf("  %-5s %s\n", e.id, e.name)
	}
	fmt.Println("\ngrid-runnable experiments (-exp, or rows in experiments.json):")
	for _, exp := range gridRegistry().List() {
		fmt.Printf("  %-5s %s\n", exp.ID, exp.Name)
		if len(exp.Params) == 0 {
			fmt.Printf("        (no overridable parameters)\n")
			continue
		}
		width := 0
		for _, s := range exp.Params {
			if len(s.Name) > width {
				width = len(s.Name)
			}
		}
		for _, s := range exp.Params {
			pad := strings.Repeat(" ", width-len(s.Name))
			fmt.Printf("        %s%s = %-8g %s\n", s.Name, pad, s.Default, s.Doc)
		}
	}
	fmt.Println("\ngrid rows additionally accept: repeats (>= 1), seed (base; repeat r runs at seed+r), note")
}
