package main

// runE15 is the RPC wire experiment: it measures what replacing the
// reflection-based gob lockstep protocol with the binary multiplexed
// transport buys on the coordinator↔node wire, over real TCP sockets.
//
// The gob lockstep baseline survives only here (and in the rpc
// package's comparison benchmark) as the measured thing-being-replaced;
// nothing outside this experiment speaks it anymore.
//
// Two measurements, both gated:
//
//   - pipelining: a single connection under a simulated 2ms RTT is
//     driven first in strict request/response lockstep over gob (the
//     old transport's behavior), then with K concurrent callers
//     multiplexed onto one pipelined binary connection. Lockstep
//     throughput is ceilinged at 1/RTT per connection no matter how
//     fast the codec is; the multiplexed connection overlaps the RTT
//     across every in-flight call. The run aborts unless pipelined
//     throughput is >= 2x lockstep on the same single connection.
//
//   - allocations: the same apply-shaped payload is round-tripped
//     sequentially over both protocols with no simulated delay, and
//     total heap allocations (client + in-process server) per call are
//     compared via runtime.MemStats.Mallocs. The run aborts unless the
//     binary wire allocates at least 50% less per round trip than gob.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"time"

	"scads/internal/expgrid"
	"scads/internal/record"
	"scads/internal/rpc"
)

const e15RTT = 2 * time.Millisecond

// e15Handler is a tiny KV node-alike: it answers the apply-shaped
// payload the experiment round-trips, optionally charging a simulated
// network round-trip before serving (the delay stands in for RTT, so
// lockstep pays it per call while pipelining overlaps it).
type e15Handler struct {
	delay time.Duration
	mu    sync.Mutex
	kv    map[string][]byte
}

func newE15Handler(delay time.Duration) *e15Handler {
	return &e15Handler{delay: delay, kv: make(map[string][]byte)}
}

func (h *e15Handler) Serve(req rpc.Request) rpc.Response {
	if h.delay > 0 {
		time.Sleep(h.delay)
	}
	switch req.Method {
	case rpc.MethodApply:
		h.mu.Lock()
		for _, r := range req.Records {
			// Retaining r.Value without a clone is safe on both
			// protocols: gob allocates fresh values per message, and
			// binary-wire request decode detaches every byte field
			// into a per-request arena the handler owns.
			h.kv[string(r.Key)] = r.Value
		}
		h.mu.Unlock()
		return rpc.Response{Found: true}
	case rpc.MethodGet:
		h.mu.Lock()
		v, ok := h.kv[string(req.Key)]
		h.mu.Unlock()
		return rpc.Response{Found: ok, Value: v}
	default:
		return rpc.Response{Found: true}
	}
}

// e15Payload is the apply-shaped request both protocols carry: two
// versioned records, the group-commit batch shape PR 1 made hot.
// valueSize scales the per-record value so grid rows can probe how
// the alloc and throughput gaps move with payload weight.
func e15Payload(valueSize int) rpc.Request {
	return rpc.Request{
		Method:    rpc.MethodApply,
		Namespace: "users",
		Records: []record.Record{
			{Key: []byte("user:000000000001"), Value: bytes.Repeat([]byte("v"), valueSize), Version: 1},
			{Key: []byte("user:000000000002"), Value: bytes.Repeat([]byte("w"), valueSize), Version: 2},
		},
	}
}

// --- gob lockstep baseline (reconstruction of the removed transport) --

func serveGobLockstep(ln net.Listener, h rpc.Handler) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			dec := gob.NewDecoder(conn)
			enc := gob.NewEncoder(conn)
			for {
				var req rpc.Request
				if err := dec.Decode(&req); err != nil {
					return
				}
				resp := h.Serve(req)
				resp.ID = req.ID
				if err := enc.Encode(&resp); err != nil {
					return
				}
			}
		}(conn)
	}
}

type gobLockstepClient struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	id   uint64
}

func dialGobLockstep(addr string) (*gobLockstepClient, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &gobLockstepClient{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

func (c *gobLockstepClient) call(req rpc.Request) (rpc.Response, error) {
	c.id++
	req.ID = c.id
	if err := c.enc.Encode(&req); err != nil {
		return rpc.Response{}, err
	}
	var resp rpc.Response
	if err := c.dec.Decode(&resp); err != nil {
		return rpc.Response{}, err
	}
	return resp, nil
}

// measureLockstep drives strict request/response lockstep on one gob
// connection for the window and returns ops/sec.
func measureLockstep(addr string, window time.Duration, req rpc.Request) float64 {
	c, err := dialGobLockstep(addr)
	must(err)
	defer c.conn.Close()
	ops := 0
	start := time.Now()
	for time.Since(start) < window {
		if _, err := c.call(req); err != nil {
			log.Fatalf("e15: lockstep call: %v", err)
		}
		ops++
	}
	return float64(ops) / time.Since(start).Seconds()
}

// measurePipelined drives K concurrent callers through one transport —
// and therefore one multiplexed TCP connection — for the window and
// returns aggregate ops/sec.
func measurePipelined(addr string, pipelines int, window time.Duration, req rpc.Request) float64 {
	tr := rpc.NewTCPTransport()
	defer tr.Close()

	// Prime the connection so the window measures steady state.
	if _, err := tr.Call(addr, req); err != nil {
		log.Fatalf("e15: pipelined prime: %v", err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	start := time.Now()
	for i := 0; i < pipelines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ops := 0
			for time.Since(start) < window {
				if _, err := tr.Call(addr, req); err != nil {
					log.Fatalf("e15: pipelined call: %v", err)
				}
				ops++
			}
			mu.Lock()
			total += ops
			mu.Unlock()
		}()
	}
	wg.Wait()
	return float64(total) / time.Since(start).Seconds()
}

// measureAllocs returns heap allocations per call for fn run `calls`
// times, counting both sides of the in-process pair.
func measureAllocs(calls int, fn func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < calls; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(calls)
}

// Grid parameters: pipelines, window_ms, value_size, alloc_calls.
func runE15(p expgrid.Params) (expgrid.Metrics, error) {
	var (
		pipelines  = p.Int("pipelines")
		window     = time.Duration(p.Get("window_ms") * float64(time.Millisecond))
		valueSize  = p.Int("value_size")
		allocCalls = p.Int("alloc_calls")
	)
	if pipelines < 2 || window < 100*time.Millisecond || valueSize < 1 || allocCalls < 100 {
		return nil, fmt.Errorf("e15: invalid params: pipelines=%d (>=2) window_ms=%v (>=100) value_size=%d (>=1) alloc_calls=%d (>=100)",
			pipelines, window, valueSize, allocCalls)
	}
	// --- throughput under RTT: lockstep vs pipelined, one conn each ---
	delayed := newE15Handler(e15RTT)

	gobLn, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	defer gobLn.Close()
	go serveGobLockstep(gobLn, delayed)

	binSrv := rpc.NewServer(delayed)
	binAddr, err := binSrv.Listen("127.0.0.1:0")
	must(err)
	defer binSrv.Close()

	payload := e15Payload(valueSize)
	lockstepOps := measureLockstep(gobLn.Addr().String(), window, payload)
	pipelinedOps := measurePipelined(binAddr, pipelines, window, payload)
	speedup := pipelinedOps / lockstepOps

	fmt.Printf("single-connection throughput under %v simulated RTT (%d-record apply payload, %dB values):\n",
		e15RTT, len(payload.Records), valueSize)
	fmt.Printf("  gob lockstep        %10.0f ops/s   (ceiling ~%0.f: one RTT per call)\n", lockstepOps, 1/e15RTT.Seconds())
	fmt.Printf("  binary pipelined    %10.0f ops/s   (%d callers multiplexed on one conn)\n", pipelinedOps, pipelines)
	fmt.Printf("  speedup             %10.1fx\n\n", speedup)

	// --- allocations per round trip: gob vs binary, no delay ----------
	fast := newE15Handler(0)

	gobLn2, err := net.Listen("tcp", "127.0.0.1:0")
	must(err)
	defer gobLn2.Close()
	go serveGobLockstep(gobLn2, fast)
	gc, err := dialGobLockstep(gobLn2.Addr().String())
	must(err)
	defer gc.conn.Close()

	binSrv2 := rpc.NewServer(fast)
	binAddr2, err := binSrv2.Listen("127.0.0.1:0")
	must(err)
	defer binSrv2.Close()
	tr := rpc.NewTCPTransport()
	defer tr.Close()

	req := e15Payload(valueSize)
	// Warm both paths (gob stream type dictionary, pooled buffers,
	// storage maps) so steady state is what gets measured.
	for i := 0; i < 100; i++ {
		if _, err := gc.call(req); err != nil {
			log.Fatalf("e15: gob warmup: %v", err)
		}
		if _, err := tr.Call(binAddr2, req); err != nil {
			log.Fatalf("e15: binary warmup: %v", err)
		}
	}
	gobAllocs := measureAllocs(allocCalls, func() {
		if _, err := gc.call(req); err != nil {
			log.Fatalf("e15: gob alloc run: %v", err)
		}
	})
	binAllocs := measureAllocs(allocCalls, func() {
		if _, err := tr.Call(binAddr2, req); err != nil {
			log.Fatalf("e15: binary alloc run: %v", err)
		}
	})
	allocDrop := 1 - binAllocs/gobAllocs

	fmt.Printf("heap allocations per round trip (client+server in-process, %d calls):\n", allocCalls)
	fmt.Printf("  gob                 %10.1f allocs/op\n", gobAllocs)
	fmt.Printf("  binary              %10.1f allocs/op\n", binAllocs)
	fmt.Printf("  reduction           %10.0f%%\n", allocDrop*100)

	metrics := expgrid.Metrics{
		"lockstep_ops_per_sec":    lockstepOps,
		"pipelined_ops_per_sec":   pipelinedOps,
		"pipelined_vs_lockstep_x": speedup,
		"gob_allocs_per_op":       gobAllocs,
		"binary_allocs_per_op":    binAllocs,
		"alloc_drop_ratio":        allocDrop,
	}

	// Hard gates: the acceptance criteria of the wire replacement.
	if speedup < 2 {
		log.Fatalf("e15: FAIL: pipelined throughput %.0f ops/s is only %.2fx lockstep %.0f ops/s (gate: >=2x)",
			pipelinedOps, speedup, lockstepOps)
	}
	if allocDrop < 0.5 {
		log.Fatalf("e15: FAIL: binary wire allocs/op %.1f vs gob %.1f is only a %.0f%% reduction (gate: >=50%%)",
			binAllocs, gobAllocs, allocDrop*100)
	}
	fmt.Printf("\ngates passed: pipelined >= 2x lockstep on one connection; allocs/op reduced >= 50%% vs gob\n")
	return metrics, nil
}
