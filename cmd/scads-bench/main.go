// Command scads-bench regenerates every figure and table of the SCADS
// paper (see EXPERIMENTS.md). Each experiment prints the series or
// table the paper reports, produced by the real system components.
//
// Usage:
//
//	scads-bench -exp all
//	scads-bench -exp e1        # Figure 1: Animoto scale-up
//	scads-bench -exp e3        # Figure 3: index-maintenance table
//	scads-bench -exp e4b       # Figure 4 row 2: write consistency
//	scads-bench -exp all -csv out/   # capture per-experiment output + index.csv
//	scads-bench -list                # catalogue + grid-overridable parameters
//
//	scads-bench -grid experiments.json -out bench-out   # the full grid, with repeats
//	scads-bench -grid experiments.json -grid-row e17-mixed
//	scads-bench -compare bench-out                      # regression gate
//
// With -csv DIR each experiment's printed series lands in
// DIR/<id>.out and DIR/index.csv records one row per experiment
// (id, name, duration, output file) for scripted collection.
//
// -grid runs the committed experiment grid: every row of
// experiments.json executes its experiment with that row's parameter
// overrides, repeat count and seed policy, and the output directory
// receives schema-validated runs.csv / summary_grouped.csv, one
// grouped BENCH_<row>.json per row, and report.md (grouped mean±std
// diffed against the committed baselines). CI's bench-gate is
// `-grid` followed by `-compare`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// legacyExperiments are the paper-figure reproductions that predate
// the grid: human-readable series with no gated metrics, runnable
// only via -exp.
var legacyExperiments = []struct {
	id   string
	name string
	run  func()
}{
	{"e1", "Figure 1: Animoto viral scale-up (50 -> 3400 servers)", runE1},
	{"e2", "Figure 2: provisioning feedback loop reaction", runE2},
	{"e3", "Figure 3: index-maintenance table", runE3},
	{"e4a", "Figure 4 row 1: performance SLA", runE4a},
	{"e4b", "Figure 4 row 2: write consistency spectrum", runE4b},
	{"e4c", "Figure 4 row 3: read-consistency staleness bound", runE4c},
	{"e4d", "Figure 4 row 4: session guarantees", runE4d},
	{"e4e", "Figure 4 row 5: durability SLA", runE4e},
	{"e5", "Scale independence: latency flat in user count", runE5},
	{"e6", "O(K) update bound: Facebook accepted, Twitter rejected", runE6},
	{"e7", "Scale-down economics: diurnal day, elastic vs static", runE7},
	{"e8", "Deadline priority queue vs FIFO (ablation)", runE8},
	{"e9", "Advisor: pre-deployment cost & downtime-vs-cost guidance", runE9},
	{"e10", "Partition contention: priority order arbitration (§3.3.1)", runE10},
	{"e11", "Workload-driven repartitioning: hot-range split & move", runE11},
}

func main() {
	exp := flag.String("exp", "", "experiment id (e1..e18, e4a..e4e) or 'all'")
	csvDir := flag.String("csv", "", "directory for per-experiment output files plus index.csv")
	jsonDir := flag.String("bench-json", "", "directory for machine-readable BENCH_<exp>.json summaries")
	compare := flag.String("compare", "", "compare BENCH_*.json summaries in this directory against committed baselines and exit non-zero on regression")
	baselines := flag.String("baselines", "cmd/scads-bench/baselines", "baseline directory for -compare and the -grid report")
	grid := flag.String("grid", "", "experiments.json grid: run every row with repeats, emit validated CSVs + grouped summaries + report")
	gridRow := flag.String("grid-row", "", "with -grid: run only the row with this id")
	gridRepeats := flag.Int("grid-repeats", 0, "with -grid: raise every row's repeat count to at least this (nightly statistical power)")
	outDir := flag.String("out", "bench-out", "output directory for -grid artifacts")
	list := flag.Bool("list", false, "print every experiment and its grid-overridable parameters")
	seed := flag.Int64("seed", 1, "base RNG seed when running a grid-registered experiment via -exp")
	flag.Parse()
	benchJSONDir = *jsonDir

	switch {
	case *list:
		listExperiments()
		return
	case *compare != "":
		if n := compareBenchmarks(*compare, *baselines); n > 0 {
			log.Fatalf("scads-bench: %d metric(s) regressed against committed baselines", n)
		}
		fmt.Println("all benchmark metrics within tolerance of committed baselines")
		return
	case *grid != "":
		runGridCmd(*grid, *gridRow, *outDir, *gridRepeats, *baselines)
		return
	case *exp == "":
		*exp = "all"
	}

	var index *os.File
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		var err error
		index, err = os.Create(filepath.Join(*csvDir, "index.csv"))
		if err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		defer index.Close()
		fmt.Fprintln(index, "experiment,name,duration_ms,output_file")
	}

	ran := false
	for _, e := range allExperiments(*seed) {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		start := time.Now()
		if index != nil {
			// Capture the experiment's printed series in its own file;
			// progress goes to stderr so scripted runs stay quiet.
			outPath := filepath.Join(*csvDir, e.id+".out")
			f, err := os.Create(outPath)
			if err != nil {
				log.Fatalf("scads-bench: %v", err)
			}
			log.Printf("running %s: %s", e.id, e.name)
			saved := os.Stdout
			os.Stdout = f
			e.run()
			os.Stdout = saved
			f.Close()
			dur := time.Since(start)
			fmt.Fprintf(index, "%s,%q,%d,%s\n", e.id, e.name, dur.Milliseconds(), e.id+".out")
			log.Printf("%s completed in %v -> %s", e.id, dur.Truncate(time.Millisecond), outPath)
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n\n", strings.ToUpper(e.id), e.name)
		e.run()
		fmt.Printf("\n[%s completed in %v]\n", e.id, time.Since(start).Truncate(time.Millisecond))
	}
	if !ran {
		log.Printf("unknown experiment %q; available:", *exp)
		for _, e := range allExperiments(*seed) {
			log.Printf("  %-4s %s", e.id, e.name)
		}
		os.Exit(2)
	}
}

type benchExperiment struct {
	id   string
	name string
	run  func()
}

// allExperiments is the -exp catalogue: the legacy figure experiments
// followed by every grid-registered experiment at its declared
// defaults (the historical single-shot behavior). Grid experiments
// run through the same Run hook the grid uses; their gated metrics
// land in -bench-json exactly as before.
func allExperiments(seed int64) []benchExperiment {
	all := make([]benchExperiment, 0, len(legacyExperiments)+6)
	for _, e := range legacyExperiments {
		all = append(all, benchExperiment{e.id, e.name, e.run})
	}
	for _, exp := range gridRegistry().List() {
		exp := exp
		all = append(all, benchExperiment{exp.ID, exp.Name, func() {
			m, err := exp.Run(defaultParams(exp, seed))
			if err != nil {
				log.Fatalf("%s: %v", exp.ID, err)
			}
			writeBenchSummary(exp.ID, m)
		}})
	}
	return all
}
