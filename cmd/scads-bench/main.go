// Command scads-bench regenerates every figure and table of the SCADS
// paper (see EXPERIMENTS.md). Each experiment prints the series or
// table the paper reports, produced by the real system components.
//
// Usage:
//
//	scads-bench -exp all
//	scads-bench -exp e1        # Figure 1: Animoto scale-up
//	scads-bench -exp e3        # Figure 3: index-maintenance table
//	scads-bench -exp e4b       # Figure 4 row 2: write consistency
//	scads-bench -exp all -csv out/   # capture per-experiment output + index.csv
//
// With -csv DIR each experiment's printed series lands in
// DIR/<id>.out and DIR/index.csv records one row per experiment
// (id, name, duration, output file) for scripted collection.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"
)

var experiments = []struct {
	id   string
	name string
	run  func()
}{
	{"e1", "Figure 1: Animoto viral scale-up (50 -> 3400 servers)", runE1},
	{"e2", "Figure 2: provisioning feedback loop reaction", runE2},
	{"e3", "Figure 3: index-maintenance table", runE3},
	{"e4a", "Figure 4 row 1: performance SLA", runE4a},
	{"e4b", "Figure 4 row 2: write consistency spectrum", runE4b},
	{"e4c", "Figure 4 row 3: read-consistency staleness bound", runE4c},
	{"e4d", "Figure 4 row 4: session guarantees", runE4d},
	{"e4e", "Figure 4 row 5: durability SLA", runE4e},
	{"e5", "Scale independence: latency flat in user count", runE5},
	{"e6", "O(K) update bound: Facebook accepted, Twitter rejected", runE6},
	{"e7", "Scale-down economics: diurnal day, elastic vs static", runE7},
	{"e8", "Deadline priority queue vs FIFO (ablation)", runE8},
	{"e9", "Advisor: pre-deployment cost & downtime-vs-cost guidance", runE9},
	{"e10", "Partition contention: priority order arbitration (§3.3.1)", runE10},
	{"e11", "Workload-driven repartitioning: hot-range split & move", runE11},
	{"e12", "Writes during migration: lossless online range handoff", runE12},
	{"e13", "Crash recovery: failure detector, failover, RF repair under load", runE13},
	{"e14", "Scan pipeline: parallel scatter-gather vs sequential; scans under migration + crash", runE14},
	{"e15", "RPC wire: binary multiplexed transport vs gob lockstep (throughput under RTT, allocs/op)", runE15},
	{"e16", "Elastic autoscaling end-to-end: diurnal / flash-crowd / hotspot-shift, SLO minutes & cost", runE16},
	{"e17", "Storage-engine raw speed: block cache hit ratio & speedup, churn correctness, fence pause under compaction", runE17},
}

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e17, e4a..e4e) or 'all'")
	csvDir := flag.String("csv", "", "directory for per-experiment output files plus index.csv")
	jsonDir := flag.String("bench-json", "", "directory for machine-readable BENCH_<exp>.json summaries")
	compare := flag.String("compare", "", "compare BENCH_*.json summaries in this directory against committed baselines and exit non-zero on regression")
	baselines := flag.String("baselines", "cmd/scads-bench/baselines", "baseline directory for -compare")
	flag.Parse()
	benchJSONDir = *jsonDir

	if *compare != "" {
		if n := compareBenchmarks(*compare, *baselines); n > 0 {
			log.Fatalf("scads-bench: %d metric(s) regressed against committed baselines", n)
		}
		fmt.Println("all benchmark metrics within tolerance of committed baselines")
		return
	}

	var index *os.File
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		var err error
		index, err = os.Create(filepath.Join(*csvDir, "index.csv"))
		if err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		defer index.Close()
		fmt.Fprintln(index, "experiment,name,duration_ms,output_file")
	}

	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran = true
		start := time.Now()
		if index != nil {
			// Capture the experiment's printed series in its own file;
			// progress goes to stderr so scripted runs stay quiet.
			outPath := filepath.Join(*csvDir, e.id+".out")
			f, err := os.Create(outPath)
			if err != nil {
				log.Fatalf("scads-bench: %v", err)
			}
			log.Printf("running %s: %s", e.id, e.name)
			saved := os.Stdout
			os.Stdout = f
			e.run()
			os.Stdout = saved
			f.Close()
			dur := time.Since(start)
			fmt.Fprintf(index, "%s,%q,%d,%s\n", e.id, e.name, dur.Milliseconds(), e.id+".out")
			log.Printf("%s completed in %v -> %s", e.id, dur.Truncate(time.Millisecond), outPath)
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n\n", strings.ToUpper(e.id), e.name)
		e.run()
		fmt.Printf("\n[%s completed in %v]\n", e.id, time.Since(start).Truncate(time.Millisecond))
	}
	if !ran {
		log.Printf("unknown experiment %q; available:", *exp)
		for _, e := range experiments {
			log.Printf("  %-4s %s", e.id, e.name)
		}
		os.Exit(2)
	}
}
