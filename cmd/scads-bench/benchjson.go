package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"scads/internal/expgrid"
)

// BenchMetric is one gated measurement of an experiment run. In a
// committed baseline file, Direction and Tolerance are the regression
// policy: "higher" means bigger is better and a run fails when its
// value drops below baseline*(1-tolerance); "lower" means smaller is
// better and a run fails when its value exceeds baseline*(1+tolerance).
// A zero-valued lower-is-better baseline with zero tolerance is a hard
// gate: any non-zero run value fails (the lost-updates / scan-errors
// invariants).
//
// Grid runs with repeats write grouped summaries: Value is the mean
// over the row's repeats and Std the sample standard deviation. The
// gate applies to the mean; Std is reported so a pass riding on
// variance is visible in the verdict table.
type BenchMetric struct {
	Value     float64 `json:"value"`
	Std       float64 `json:"std,omitempty"`
	Direction string  `json:"direction,omitempty"`
	Tolerance float64 `json:"tolerance,omitempty"`
}

// BenchSummary is the machine-readable result of one experiment (or
// one grid row), written as BENCH_<exp>.json next to the
// human-readable series. Repeats records how many independent repeats
// the grouped metrics aggregate (0/absent = a single legacy run).
type BenchSummary struct {
	Experiment string                 `json:"experiment"`
	Repeats    int                    `json:"repeats,omitempty"`
	Metrics    map[string]BenchMetric `json:"metrics"`
}

// benchJSONDir receives BENCH_<exp>.json summaries when the
// -bench-json flag is set; empty disables emission.
var benchJSONDir string

// writeBenchSummary persists an experiment's gated metric values. Run
// summaries carry values only — direction and tolerance live solely
// in the committed baselines, so refreshing a baseline from a run
// file can never silently loosen the policy. A write failure is
// fatal: a CI run that silently skips the summary would also silently
// skip the regression gate.
func writeBenchSummary(exp string, values map[string]float64) {
	if benchJSONDir == "" {
		return
	}
	if err := os.MkdirAll(benchJSONDir, 0o755); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	metrics := make(map[string]BenchMetric, len(values))
	for name, v := range values {
		metrics[name] = BenchMetric{Value: v}
	}
	b, err := json.MarshalIndent(BenchSummary{Experiment: exp, Metrics: metrics}, "", "  ")
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	path := filepath.Join(benchJSONDir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	log.Printf("%s: wrote %s", exp, path)
}

// writeGroupedBenchSummary persists a grid row's aggregated metrics
// as BENCH_<row>.json: mean as the gated value, std and the repeat
// count alongside. Like writeBenchSummary, run files never carry
// direction/tolerance — policy lives only in committed baselines.
func writeGroupedBenchSummary(dir string, row expgrid.RowResult) {
	metrics := make(map[string]BenchMetric, len(row.Grouped))
	for name, a := range row.Grouped {
		metrics[name] = BenchMetric{Value: a.Mean, Std: a.Std}
	}
	s := BenchSummary{Experiment: row.Row.ID, Repeats: len(row.Repeats), Metrics: metrics}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	path := filepath.Join(dir, "BENCH_"+row.Row.ID+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Fatalf("scads-bench: %v", err)
	}
	log.Printf("grid row %s: wrote %s", row.Row.ID, path)
}

func readSummary(path string) (*BenchSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s BenchSummary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compareBenchmarks diffs every BENCH_*.json summary in runDir against
// the committed baseline of the same name, applying each baseline
// metric's direction and tolerance. It prints a verdict table and
// returns how many metrics regressed; metrics present in a run but
// absent from its baseline are informational only, while a baseline
// metric missing from the run counts as a regression (a gate that
// stopped being measured is a gate that stopped gating).
func compareBenchmarks(runDir, baselineDir string) int {
	runs, err := filepath.Glob(filepath.Join(runDir, "BENCH_*.json"))
	if err != nil || len(runs) == 0 {
		log.Fatalf("scads-bench: no BENCH_*.json summaries under %s", runDir)
	}
	sort.Strings(runs)
	regressions := 0
	for _, runPath := range runs {
		run, err := readSummary(runPath)
		if err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		basePath := filepath.Join(baselineDir, filepath.Base(runPath))
		base, err := readSummary(basePath)
		if os.IsNotExist(err) {
			fmt.Printf("%s: no baseline at %s (skipping; commit one to gate it)\n", run.Experiment, basePath)
			continue
		}
		if err != nil {
			log.Fatalf("scads-bench: %v", err)
		}
		if run.Repeats > 1 {
			fmt.Printf("%s (baseline %s; run is mean over %d repeats, gate on mean):\n",
				run.Experiment, basePath, run.Repeats)
		} else {
			fmt.Printf("%s (baseline %s):\n", run.Experiment, basePath)
		}
		names := make([]string, 0, len(base.Metrics))
		for name := range base.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bm := base.Metrics[name]
			rm, ok := run.Metrics[name]
			if !ok {
				fmt.Printf("  %-34s %14s   REGRESSION (metric missing from run)\n", name, "-")
				regressions++
				continue
			}
			ok, bound := withinTolerance(bm, rm.Value)
			verdict := "ok"
			if !ok {
				verdict = fmt.Sprintf("REGRESSION (%s bound %g)", bm.Direction, bound)
				regressions++
			}
			cell := fmt.Sprintf("%g", rm.Value)
			if run.Repeats > 1 {
				cell = fmt.Sprintf("%g ±%g", rm.Value, rm.Std)
			}
			fmt.Printf("  %-34s %20s   baseline %g  %s\n", name, cell, bm.Value, verdict)
		}
	}
	return regressions
}

// withinTolerance applies a baseline metric's policy to a run value,
// returning the verdict and the bound that was enforced. The policy
// semantics live in expgrid.Baseline so the markdown report and this
// gate can never diverge.
func withinTolerance(base BenchMetric, got float64) (bool, float64) {
	return expgrid.Baseline{Value: base.Value, Direction: base.Direction, Tolerance: base.Tolerance}.Within(got)
}
