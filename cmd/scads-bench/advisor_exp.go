package main

import (
	"fmt"
	"time"

	"scads"
	"scads/internal/advisor"
	"scads/internal/analyzer"
)

// runE9 regenerates the §2.2/§3.3.1 guidance flow: the developer
// submits query templates with a workload estimate and, before
// anything is deployed, the system reports per-query cost, index
// storage, cluster sizing with a monthly bill, and the expected
// downtime-vs-cost curve — including the rejection reasons for
// templates that are not scale-independent.
func runE9() {
	ddl := `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY getProfile
SELECT * FROM profiles WHERE id = ?user LIMIT 1

QUERY friendBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50

QUERY followersOf
SELECT p.* FROM follows f JOIN profiles p ON f.follower = p.id
WHERE f.followee = ?user LIMIT 100
`
	w := scads.AdviceWorkload{
		QueryRates: map[string]float64{
			"getProfile": 4000, "friendBirthdays": 1000, "followersOf": 500,
		},
		UpdateRates: map[string]float64{"profiles": 80, "friendships": 40, "follows": 40},
		TableRows: map[string]int{
			"profiles": 1_000_000, "friendships": 20_000_000, "follows": 30_000_000,
		},
	}
	cfg := scads.AdviceConfig{
		Capacity: scads.AnalyticCapacity{
			PerServer: paperService().CapacityPerServer,
			Base:      paperService().Base,
			K:         paperService().K,
		},
		SLALatency:        100 * time.Millisecond,
		ReplicationFactor: 2,
	}
	rep, err := scads.AdviseDDL(ddl, analyzer.Config{}, w, cfg)
	must(err)
	fmt.Println("pre-deployment guidance (three templates, one Twitter-shaped):")
	fmt.Println()
	fmt.Print(rep.Format())

	// The durability clause of the consistency DSL picks off this
	// curve: show the choice for two example requirements.
	for _, target := range []float64{0.999, 0.99999} {
		if p, ok := advisor.PickReplicas(rep.Curve, target, target); ok {
			fmt.Printf("\nrequirement %.3f%% availability+durability -> %d replicas, $%.2f/month",
				target*100, p.Replicas, p.MonthlyUSD)
		} else {
			fmt.Printf("\nrequirement %.3f%% availability+durability -> infeasible within explored replication",
				target*100)
		}
	}
	fmt.Println()
}
