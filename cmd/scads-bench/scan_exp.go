package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"scads"
	"scads/internal/expgrid"
	"scads/internal/keycodec"
	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/repair"
)

// e14DDL declares the scan-heavy workload: a paged listing that
// projects two of three columns (projection pushdown) over a range
// spanning many partitions. The pageAll LIMIT scales with the dataset
// so a grid row growing `users` still scans every row.
func e14DDL(users int) string {
	return fmt.Sprintf(`
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1
QUERY pageUsers
SELECT id, name FROM users WHERE id >= ?lo LIMIT 400
QUERY pageAll
SELECT * FROM users WHERE id >= ?lo LIMIT %d
`, users+600)
}

func e14ID(i int) string { return fmt.Sprintf("user%04d", i) }

// runE14 measures and gates the scatter-gather scan pipeline:
//
//   - throughput: the same multi-range scan (8 of 12 ranges, under a
//     simulated 2ms per-call network latency) is driven through the
//     sequential range-at-a-time path (Parallelism 1) and the parallel
//     pipeline; the run aborts unless parallel achieves >=2x the
//     sequential throughput;
//   - resilience: scanner goroutines then hammer bounded multi-range
//     queries — verifying row count, order, content and projection of
//     every result — while ranges migrate across the node set and a
//     range primary is killed and later resurrected. Any scan error or
//     wrong result aborts the run: scans ride through fences and
//     failovers exactly like the write path.
//
// Grid parameters: users, range_size, rtt_ms, measure_scans. The
// dataset must stay inside user0000..user9999 (4-digit ids keep
// lexicographic order equal to numeric order) and split into at least
// 12 ranges so phase 1 still fans out over >= 8 of them.
func runE14(p expgrid.Params) (expgrid.Metrics, error) {
	var (
		users        = p.Int("users")
		rangeSize    = p.Int("range_size")
		rtt          = time.Duration(p.Get("rtt_ms") * float64(time.Millisecond))
		measureScans = p.Int("measure_scans")
	)
	switch {
	case rangeSize < 1 || users%rangeSize != 0:
		return nil, fmt.Errorf("e14: users=%d must be a positive multiple of range_size=%d", users, rangeSize)
	case users/rangeSize < 12:
		return nil, fmt.Errorf("e14: users=%d range_size=%d gives %d ranges, need >= 12", users, rangeSize, users/rangeSize)
	case users < 1000 || users > 9999:
		return nil, fmt.Errorf("e14: users=%d outside 1000..9999 (4-digit id space)", users)
	case rtt <= 0 || measureScans < 1:
		return nil, fmt.Errorf("e14: rtt_ms and measure_scans must be positive")
	}
	lc, err := scads.NewLocalCluster(5, scads.Config{
		ReplicationFactor: 2,
		Repair: repair.Config{
			SweepInterval:    10 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
			ReplaceAfter:     50 * time.Millisecond,
		},
	})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(e14DDL(users)))

	var splits []any
	for at := rangeSize; at < users; at += rangeSize {
		splits = append(splits, e14ID(at))
	}
	must(lc.SplitTable("users", splits...))
	must(lc.SpreadAll())
	ns := planner.TableNamespace("users")

	// Seed, then drain replication so every replica serves complete
	// data before reads start (the churn phase is read-only, so the
	// dataset stays exact).
	for lo := 0; lo < users; lo += rangeSize {
		rows := make([]scads.Row, 0, rangeSize)
		for i := lo; i < lo+rangeSize; i++ {
			rows = append(rows, scads.Row{"id": e14ID(i), "name": "name-" + e14ID(i), "birthday": i%365 + 1})
		}
		must(lc.InsertBatch("users", rows))
	}
	for lc.Pump().Drain(4096) > 0 {
	}

	// Simulated per-call latency: fan-out wins are a wall-clock
	// phenomenon, invisible over a zero-latency in-process transport.
	lc.Transport.Clock = lc.Clock()
	lc.Transport.Latency = rtt

	// --- Phase 1: parallel vs sequential throughput -----------------
	scanFrom := keycodec.MustEncode(e14ID(4 * rangeSize)) // skip 4 ranges: >= 8 remain, one fan-out wave
	wantRows := users - 4*rangeSize
	runScans := func(parallelism int) (scansPerSec float64) {
		start := time.Now()
		for i := 0; i < measureScans; i++ {
			recs, err := lc.Router().ScanOpts(ns, scanFrom, nil, partition.ScanOptions{
				Limit: wantRows + rangeSize, Policy: partition.ReadAny, Parallelism: parallelism,
			})
			must(err)
			if len(recs) != wantRows {
				log.Fatalf("e14: scan returned %d records, want %d", len(recs), wantRows)
			}
		}
		return float64(measureScans) / time.Since(start).Seconds()
	}
	seqRate := runScans(1)
	parRate := runScans(0) // router default parallelism
	speedup := parRate / seqRate

	// --- Phase 2: scans under migration churn + a killed replica ----
	lc.StartBackground(4)
	defer lc.StopBackground()

	// The page query starts 500 rows from the end, so its LIMIT 400
	// page is always full regardless of the dataset size.
	pageStart := users - 500
	expectPage := make([]string, 0, 400)
	for i := pageStart; i < pageStart+400; i++ {
		expectPage = append(expectPage, e14ID(i))
	}
	expectAll := make([]string, 0, users)
	for i := 0; i < users; i++ {
		expectAll = append(expectAll, e14ID(i))
	}

	var (
		scansDone  atomic.Int64
		scanErrs   atomic.Int64
		mismatches atomic.Int64
		stop       atomic.Bool
		wg         sync.WaitGroup
	)
	verify := func(rows []scads.Row, expect []string, projected bool) {
		if len(rows) != len(expect) {
			mismatches.Add(1)
			return
		}
		for i, r := range rows {
			id, _ := r["id"].(string)
			if id != expect[i] || r["name"] != "name-"+expect[i] {
				mismatches.Add(1)
				return
			}
			if _, hasBD := r["birthday"]; hasBD == projected {
				// A projected query must not carry the dropped column;
				// an unprojected one must still have it.
				mismatches.Add(1)
				return
			}
		}
	}
	const scanners = 3
	for s := 0; s < scanners; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if (s+i)%2 == 0 {
					rows, err := lc.Query("pageUsers", map[string]any{"lo": e14ID(pageStart)})
					if err != nil {
						scanErrs.Add(1)
						continue
					}
					verify(rows, expectPage, true)
				} else {
					rows, err := lc.Query("pageAll", map[string]any{"lo": e14ID(0)})
					if err != nil {
						scanErrs.Add(1)
						continue
					}
					verify(rows, expectAll, false)
				}
				scansDone.Add(1)
			}
		}(s)
	}

	// Migration churn: continuously cycle ranges across the node set,
	// skipping any range that currently involves the crashed node.
	victim := ""
	if m, ok := lc.Router().Map(ns); ok {
		victim = m.Ranges()[0].Replicas[0]
	}
	var migrations, migrationErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; !stop.Load(); r++ {
			m, ok := lc.Router().Map(ns)
			if !ok {
				return
			}
			live := map[string]bool{}
			var liveIDs []string
			for _, mem := range lc.Directory().Up() {
				live[mem.ID] = true
				liveIDs = append(liveIDs, mem.ID)
			}
			if len(liveIDs) < 2 {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			for i, rng := range m.Ranges() {
				if stop.Load() {
					return
				}
				skip := false
				for _, id := range rng.Replicas {
					if !live[id] {
						skip = true // don't migrate ranges holding the crashed node
					}
				}
				if skip {
					continue
				}
				key := rng.Start
				if key == nil {
					key = []byte{}
				}
				want := []string{liveIDs[(r+i)%len(liveIDs)], liveIDs[(r+i+1)%len(liveIDs)]}
				if err := lc.MoveRange(ns, key, want); err != nil {
					migrationErrs.Add(1)
					continue
				}
				migrations.Add(1)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Crash timeline: kill a range primary mid-churn, resurrect it
	// later; the repair manager handles detection, failover and RF
	// restoration while scans keep verifying exact results.
	time.Sleep(800 * time.Millisecond)
	lc.CrashNode(victim)
	time.Sleep(1200 * time.Millisecond)
	lc.RecoverNode(victim)
	time.Sleep(1500 * time.Millisecond)

	stop.Store(true)
	wg.Wait()
	lc.Repairs().Quiesce(10 * time.Second)

	st := lc.RepairStats()
	fmt.Printf("scatter-gather scan pipeline over %d ranges (%d users, 5 nodes, RF=2, %v simulated RTT)\n\n",
		users/rangeSize, users, rtt)
	fmt.Printf("  %-34s %12.1f\n", "sequential scans/sec", seqRate)
	fmt.Printf("  %-34s %12.1f\n", "parallel scans/sec", parRate)
	fmt.Printf("  %-34s %12.2fx\n", "speedup", speedup)
	fmt.Printf("  %-34s %12d\n", "churn scans verified", scansDone.Load())
	fmt.Printf("  %-34s %12d\n", "scan errors", scanErrs.Load())
	fmt.Printf("  %-34s %12d\n", "wrong results", mismatches.Load())
	fmt.Printf("  %-34s %12d\n", "online migrations during scans", migrations.Load())
	fmt.Printf("  %-34s %12d\n", "migration errors (non-gating)", migrationErrs.Load())
	fmt.Printf("  %-34s %12d\n", "failovers", st.Failovers)

	metrics := expgrid.Metrics{
		"speedup":           speedup,
		"parallel_scans_ps": parRate,
		"churn_scans":       float64(scansDone.Load()),
		"scan_errors":       float64(scanErrs.Load()),
		"wrong_results":     float64(mismatches.Load()),
		"migrations":        float64(migrations.Load()),
	}

	if speedup < 2.0 {
		log.Fatalf("e14: parallel scatter-gather only %.2fx the sequential path (gate: >=2x at >=8 ranges)", speedup)
	}
	if scanErrs.Load() > 0 || mismatches.Load() > 0 {
		log.Fatalf("e14: SCANS BROKE UNDER RECONFIGURATION: errors=%d wrong=%d",
			scanErrs.Load(), mismatches.Load())
	}
	if migrations.Load() < 10 || scansDone.Load() < 20 {
		log.Fatalf("e14: churn did not engage: migrations=%d scans=%d", migrations.Load(), scansDone.Load())
	}

	fmt.Println("\nevery bounded multi-range query kept returning exact, ordered,")
	fmt.Println("correctly projected pages while its ranges were mid-handoff and a")
	fmt.Println("primary was dead: the read path now carries the same resilience")
	fmt.Println("contract as writes, and fan-out latency no longer grows with the")
	fmt.Println("number of partitions a query spans (FleetOpt's routing argument).")
	must(mapValidate(lc, ns))
	return metrics, nil
}
