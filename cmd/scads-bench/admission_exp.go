package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"scads"
	"scads/internal/admission"
	"scads/internal/expgrid"
	"scads/internal/session"
)

// runE18 is the multi-tenant admission-control experiment: N compliant
// committed tenants with zipf-skewed paced demand share a cluster with
// one adversarial best-effort tenant driving unpaced load far past its
// quota. It proves the front door's three contracts and aborts loudly
// if any fails:
//
//   - noisy-neighbor isolation: the compliant tenants' p99 write
//     latency stays inside the SLO while the adversary floods (the
//     latencies include every retry-after wait, so backpressure leaks
//     into the number if isolation fails);
//   - strict shed ordering: under the measured in-flight overload the
//     best-effort classes shed (scans first, then writes) while the
//     committed classes shed exactly zero ops — the watermark
//     arithmetic makes that a hard invariant here, not a tendency;
//   - zero acked-write loss: every compliant write acknowledged during
//     the flood is readable afterwards through its session.
//
// The adversary's pressure must also land where the design routes it:
// its own token bucket (quota rejections) and the hot-tenant detector
// feeding the balancer.
//
// Grid parameters: tenants, adv_workers, quota_ops, run_ms,
// max_inflight, slo_ms, rtt_ms.
func runE18(p expgrid.Params) (expgrid.Metrics, error) {
	var (
		tenants    = p.Int("tenants")
		advWorkers = p.Int("adv_workers")
		quotaOps   = p.Get("quota_ops")
		runFor     = time.Duration(p.Int("run_ms")) * time.Millisecond
		maxIF      = p.Int("max_inflight")
		sloMs      = p.Get("slo_ms")
		rtt        = time.Duration(p.Get("rtt_ms") * float64(time.Millisecond))
	)
	if tenants < 2 || tenants > 4 || advWorkers < 8 || quotaOps < 50 || maxIF < 8 || rtt <= 0 {
		return nil, fmt.Errorf("e18: invalid params: tenants=%d (2-4: keeps committed sheds structurally zero at max_inflight) adv_workers=%d (>=8) quota_ops=%g (>=50) max_inflight=%d (>=8) rtt_ms=%v (>0)", tenants, advWorkers, quotaOps, maxIF, rtt)
	}

	// Tenant configs: compliant tenant i is committed with a
	// zipf-skewed quota (quota_ops/(i+1)) it will stay inside. The
	// adversary is best-effort with a generous ops quota (20x the
	// base) so the in-flight watermark — not its ops bucket — is what
	// its write flood runs into, and a tight scan-byte budget its
	// scans overdraw immediately: overload sheds and quota rejections
	// both fire, each from the mechanism designed to produce it.
	tenantCfgs := map[string]admission.TenantConfig{
		"adversary": {
			Priority:        admission.BestEffort,
			OpsPerSec:       20 * quotaOps,
			Burst:           quotaOps,
			ScanBytesPerSec: 32 << 10,
		},
	}
	for i := 0; i < tenants; i++ {
		tenantCfgs[fmt.Sprintf("tenant-%d", i)] = admission.TenantConfig{
			Priority:  admission.Committed,
			OpsPerSec: quotaOps / float64(i+1),
		}
	}

	lc, err := scads.NewLocalCluster(3, scads.Config{
		ReplicationFactor: 2,
		Admission: admission.Config{
			MaxInFlight: maxIF,
			Tenants:     tenantCfgs,
		},
	})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	// Read-your-writes makes "acked ⇒ readable" checkable through the
	// writer's own session regardless of replication lag.
	must(lc.ApplyConsistency(`
namespace users { session: read-your-writes; staleness: 10m; }
`))
	// Seed the adversary's scan target so its queries move real bytes
	// through the scan-byte bucket: ~17 KiB per scan against a 32 KiB
	// budget, so the opening scan wave (up to 10 admitted before the
	// shed floor) overdraws the post-paid bucket by several seconds of
	// refill and scan-byte rejections fire for the rest of the run.
	for i := 0; i < 500; i++ {
		must(lc.Insert("friendships", scads.Row{"f1": "adv", "f2": fmt.Sprintf("peer%04d", i)}))
	}

	// Per-call network latency, enabled after seeding: over a
	// zero-latency in-process transport every op completes in
	// microseconds and nothing ever accumulates in flight, so the
	// overload watermarks would be dead code.
	lc.Transport.Clock = lc.Clock()
	lc.Transport.Latency = rtt

	start := time.Now()
	var wg sync.WaitGroup

	// The adversary: unpaced on success, mixing scans into writes. A
	// rejected op costs a 1ms client turnaround (any remote client pays
	// at least an RTT before resubmitting) — without it the in-process
	// reject loop degenerates into a CPU spin that starves the whole
	// benchmark process, which is scheduler DoS, not data-plane load.
	for w := 0; w < advWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := lc.NewSession("users")
			sess.BindTenant("adversary")
			for i := 0; time.Since(start) < runFor; i++ {
				var err error
				if i%3 == 0 {
					_, err = lc.QuerySession("friends", map[string]any{"user": "adv"}, sess)
				} else {
					err = lc.InsertSession("users", scads.Row{
						"id": fmt.Sprintf("adv-%02d-%06d", w, i), "name": "a", "birthday": 1,
					}, sess)
				}
				if err != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}

	// Compliant tenants: paced at half their quota (never the quota's
	// fault if they shed), latency measured around every op.
	type tenantResult struct {
		acked []string
		lats  []time.Duration
		sess  *session.Session
	}
	results := make([]tenantResult, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := lc.NewSession("users")
			sess.BindTenant(fmt.Sprintf("tenant-%d", i))
			results[i].sess = sess
			rate := quotaOps / float64(i+1) / 2
			interval := time.Duration(float64(time.Second) / rate)
			for n := 0; time.Since(start) < runFor; n++ {
				id := fmt.Sprintf("good-%d-%06d", i, n)
				t0 := time.Now()
				err := lc.InsertSession("users", scads.Row{
					"id": id, "name": "g", "birthday": i + 1,
				}, sess)
				results[i].lats = append(results[i].lats, time.Since(t0))
				if err != nil {
					log.Fatalf("e18: compliant tenant-%d write rejected: %v", i, err)
				}
				results[i].acked = append(results[i].acked, id)
				// Pace against the schedule, not the previous op's end,
				// so a slow op doesn't silently lower the offered rate.
				if wait := time.Duration(n+1) * interval; time.Since(start) < wait {
					time.Sleep(wait - time.Since(start))
				}
			}
		}(i)
	}

	// Sample the hot-tenant detector while the flood is still running
	// (its demand windows decay once traffic stops).
	time.Sleep(runFor - runFor/8)
	hot := lc.HotTenants()
	wg.Wait()
	must(lc.FlushAll())

	st := lc.Stats().Admission

	// Zero lost acked writes, via each tenant's own session.
	lost := 0
	total := 0
	var lats []time.Duration
	for i := range results {
		total += len(results[i].acked)
		lats = append(lats, results[i].lats...)
		for _, id := range results[i].acked {
			if _, found, err := lc.GetSession("users", scads.Row{"id": id}, results[i].sess); err != nil || !found {
				lost++
			}
		}
	}
	if total == 0 {
		log.Fatalf("e18: compliant tenants landed zero writes")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]

	adversaryHot := 0.0
	for _, h := range hot {
		if h.Tenant == "adversary" {
			adversaryHot = 1
		}
	}

	committedSheds := st.ShedByClass[0] + st.ShedByClass[1]
	metrics := expgrid.Metrics{
		"compliant_acked":    float64(total),
		"compliant_p99_ms":   float64(p99.Microseconds()) / 1000,
		"lost_acked_writes":  float64(lost),
		"committed_shed_ops": float64(committedSheds),
		"be_write_sheds":     float64(st.ShedByClass[2]),
		"be_scan_sheds":      float64(st.ShedByClass[3]),
		"quota_rejections":   float64(st.ShedQuota),
		"adversary_hot":      adversaryHot,
	}

	fmt.Printf("%d committed tenants (zipf quotas from %g ops/s) vs 1 best-effort adversary x%d workers; max in-flight %d\n\n",
		tenants, quotaOps, advWorkers, maxIF)
	fmt.Printf("  %-34s %12d\n", "compliant acked writes", total)
	fmt.Printf("  %-34s %12.2f\n", "compliant p99 (ms, retries incl)", metrics["compliant_p99_ms"])
	fmt.Printf("  %-34s %12d\n", "lost acked writes", lost)
	fmt.Printf("  %-34s %12d\n", "committed-class sheds", committedSheds)
	fmt.Printf("  %-34s %12d\n", "best-effort write sheds", st.ShedByClass[2])
	fmt.Printf("  %-34s %12d\n", "best-effort scan sheds", st.ShedByClass[3])
	fmt.Printf("  %-34s %12d\n", "quota rejections", st.ShedQuota)
	fmt.Printf("  %-34s %12d\n", "peak in-flight", st.PeakInFlight)
	fmt.Printf("  %-34s %12v\n", "adversary flagged hot", adversaryHot == 1)

	// Hard gates: the paper's SLA story under adversarial traffic.
	if lost > 0 {
		log.Fatalf("e18: ACKED WRITES LOST UNDER FLOOD: %d of %d", lost, total)
	}
	if committedSheds > 0 {
		log.Fatalf("e18: committed classes shed (%d) before best-effort exhausted: %+v", committedSheds, st.ShedByClass)
	}
	if float64(p99.Microseconds())/1000 > sloMs {
		log.Fatalf("e18: NOISY NEIGHBOR BROKE THE SLO: compliant p99 %v > %gms", p99, sloMs)
	}
	if st.ShedByClass[3] == 0 || st.ShedByClass[2] == 0 {
		log.Fatalf("e18: overload shedding never engaged (scan sheds %d, write sheds %d): flood too weak for max_inflight=%d",
			st.ShedByClass[3], st.ShedByClass[2], maxIF)
	}
	if st.ShedQuota == 0 {
		log.Fatalf("e18: adversary never hit its quota")
	}
	if adversaryHot == 0 {
		log.Fatalf("e18: hot-tenant detector missed the adversary: %v", hot)
	}

	fmt.Println("\nthe adversary's demand landed on its own quota, the overload sheds")
	fmt.Println("degraded strictly best-effort-first, and the compliant tenants kept")
	fmt.Println("their SLO with every acknowledged write intact — per-tenant admission")
	fmt.Println("turns a noisy neighbor from an outage into that tenant's own problem.")
	return metrics, nil
}
