package main

import (
	"os"
	"testing"

	"scads/internal/expgrid"
)

// TestCommittedGridParses pins the committed experiments.json to the
// registry: every row must name a registered experiment and override
// only declared parameters. A rename or a typo in either place fails
// here, not in CI's bench-gate.
func TestCommittedGridParses(t *testing.T) {
	data, err := os.ReadFile("../../experiments.json")
	if err != nil {
		t.Fatalf("read committed grid: %v", err)
	}
	g, err := expgrid.ParseGrid(data, gridRegistry())
	if err != nil {
		t.Fatalf("committed experiments.json invalid: %v", err)
	}
	if len(g.Rows) < 8 {
		t.Fatalf("committed grid has %d rows, want >= 8 (e12..e17 plus workload variants)", len(g.Rows))
	}
	variants := 0
	for _, row := range g.Rows {
		if len(row.Params) > 0 {
			variants++
		}
	}
	if variants < 2 {
		t.Fatalf("committed grid has %d override rows, want >= 2 (scenario diversity)", variants)
	}
}

// TestGridRegistryDefaultsValidate runs every registered experiment's
// parameter validation (not its workload) at declared defaults by
// constructing the same Params the legacy -exp path uses. Defaults
// that an experiment would reject are caught here.
func TestGridRegistryDefaultsValidate(t *testing.T) {
	for _, exp := range gridRegistry().List() {
		p := defaultParams(exp, 1)
		for _, spec := range exp.Params {
			if got := p.Get(spec.Name); got != spec.Default {
				t.Errorf("%s: default %s = %g, want %g", exp.ID, spec.Name, got, spec.Default)
			}
		}
	}
}

// TestGroupedSummaryRoundTrip writes a grouped BENCH_<row>.json and
// reads it back through the same decoder -compare uses, verifying the
// mean/std/repeats fields survive the trip.
func TestGroupedSummaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	row := expgrid.RowResult{
		Row: expgrid.Row{ID: "fake", Experiment: "e12"},
		Repeats: []expgrid.RepeatResult{
			{Repeat: 0, Metrics: expgrid.Metrics{"m": 10}},
			{Repeat: 1, Metrics: expgrid.Metrics{"m": 14}},
		},
	}
	row.Grouped = expgrid.Aggregate([]expgrid.Metrics{{"m": 10}, {"m": 14}})
	writeGroupedBenchSummary(dir, row)
	s, err := readSummary(dir + "/BENCH_fake.json")
	if err != nil {
		t.Fatalf("readSummary: %v", err)
	}
	if s.Repeats != 2 {
		t.Fatalf("repeats = %d, want 2", s.Repeats)
	}
	m := s.Metrics["m"]
	if m.Value != 12 || m.Std == 0 {
		t.Fatalf("grouped metric = %+v, want mean 12 with non-zero std", m)
	}
	if m.Direction != "" || m.Tolerance != 0 {
		t.Fatalf("run summary must not carry baseline policy: %+v", m)
	}
}
