package main

import (
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"scads"
	"scads/internal/analyzer"
	"scads/internal/clock"
	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/record"
	"scads/internal/replication"
	"scads/internal/sim"
	"scads/internal/workload"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

func paperSLA() consistency.PerformanceSLA {
	return consistency.PerformanceSLA{Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.9}
}

func paperService() cloudsim.ServiceModel {
	return cloudsim.ServiceModel{CapacityPerServer: 1000, Base: 5 * time.Millisecond, K: 30 * time.Millisecond}
}

const socialDDL = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1
QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000
QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

// --- E1: Figure 1 ---

func runE1() {
	svc := paperService()
	trace := workload.AnimotoTrace(t0, svc.CapacityPerServer)
	res := sim.Run(sim.Config{
		Start: t0, Duration: 72 * time.Hour, Tick: time.Minute,
		Trace: trace, Service: svc, SLA: paperSLA(),
		Cloud:          cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10},
		Mode:           sim.ModeModelDriven,
		InitialServers: 50,
		Warmup:         true,
	})
	fmt.Println("servers over the three-day viral ramp (model-driven director):")
	fmt.Printf("%8s %14s %10s %10s\n", "hour", "load(req/s)", "servers", "sla")
	for i, tk := range res.Ticks {
		if i%(6*60) != 0 { // every 6 simulated hours
			continue
		}
		status := "ok"
		if !tk.Met {
			status = "VIOLATION"
		}
		fmt.Printf("%8.0f %14.0f %10d %10s\n", tk.T.Sub(t0).Hours(), tk.Rate, tk.Running, status)
	}
	last := res.Ticks[len(res.Ticks)-1]
	fmt.Printf("%8.0f %14.0f %10d\n", last.T.Sub(t0).Hours(), last.Rate, last.Running)
	fmt.Printf("\npaper (Figure 1): ~50 servers -> 3400+ servers in 3 days\n")
	fmt.Printf("measured:         %d servers -> %d servers (peak %d), SLA violations %.2f%%, %.0f machine-hours\n",
		res.Ticks[0].Running, res.FinalServers, res.PeakServers,
		100*res.ViolationRate(), res.MachineHours)
}

// --- E2: Figure 2 ---

func runE2() {
	svc := paperService()
	stepAt := t0.Add(2 * time.Hour)
	trace := workload.Spike{
		Baseline: workload.Constant(2000), At: stepAt,
		Rise: time.Minute, Duration: 3 * time.Hour, Magnitude: 4,
	}
	run := func(mode sim.Mode) (sim.Result, sim.ReactionStats) {
		res := sim.Run(sim.Config{
			Start: t0, Duration: 6 * time.Hour, Tick: time.Minute,
			Trace: trace, Service: svc, SLA: paperSLA(),
			Cloud:          cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10},
			Mode:           mode,
			InitialServers: 4,
			Warmup:         true,
		})
		return res, sim.MeasureReaction(res, stepAt)
	}
	md, mdR := run(sim.ModeModelDriven)
	re, reR := run(sim.ModeReactive)

	fmt.Println("4x load step at hour 2; how the Figure 2 loop reacts:")
	fmt.Printf("%-22s %16s %16s %14s\n", "policy", "violations", "violation-rate", "recovery")
	rec := func(rs sim.ReactionStats) string {
		if !rs.EverViolated {
			return "never violated"
		}
		if !rs.Recovered {
			return "never recovered"
		}
		return rs.Recovery.String()
	}
	fmt.Printf("%-22s %16d %15.2f%% %14s\n", "model-driven (SCADS)", md.Violations, 100*md.ViolationRate(), rec(mdR))
	fmt.Printf("%-22s %16d %15.2f%% %14s\n", "reactive (ablation)", re.Violations, 100*re.ViolationRate(), rec(reR))
	fmt.Println("\nthe model-driven loop provisions at the forecast horizon (boot delay +")
	fmt.Println("2 ticks), so it absorbs the step with fewer violated intervals and")
	fmt.Println("recovers sooner than the reactive threshold rule.")
}

// --- E3: Figure 3 ---

func runE3() {
	ddl := `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    since int,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY friends
SELECT * FROM friendships WHERE f1 = ?user ORDER BY since DESC LIMIT 5000

QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 1000

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`
	s, err := query.Parse(ddl)
	must(err)
	results, err := analyzer.Analyze(s, analyzer.Config{MaxUpdateWork: 20000})
	must(err)
	out2, err := planner.Compile(s, results)
	must(err)

	fmt.Println("paper's Figure 3:")
	fmt.Println("  friend index            friendships   *")
	fmt.Println("  friends of friends idx  friend index  *")
	fmt.Println("  birthday index          profiles      birthday")
	fmt.Println("  birthday index          friendship    *")
	fmt.Println("\ncompiled maintenance table (this reproduction):")
	fmt.Print(indent(planner.FormatMaintenanceTable(out2.Maintenance), "  "))
	fmt.Println("\nnotes: idx_friends is the friend index; view_friendsOfFriends covers the")
	fmt.Println("paper's cascading friend-index trigger by triggering on both sides of the")
	fmt.Println("self-join directly; rev_friendships_f2 is the auxiliary reverse index the")
	fmt.Println("birthday view needs for bounded profile-change maintenance.")

	fmt.Println("\nper-query analysis (scale-independence proof objects):")
	fmt.Printf("  %-28s %-12s %10s %12s\n", "query", "shape", "fanout", "update-work")
	for _, name := range s.QueryOrder {
		r := results[name]
		fmt.Printf("  %-28s %-12s %10d %12d\n", name, r.Shape, r.Fanout, r.UpdateWork)
	}
}

// --- E4a ---

func runE4a() {
	lc, err := scads.NewLocalCluster(4, scads.Config{ReplicationFactor: 2, SLA: paperSLA()})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	for i := 0; i < 2000; i++ {
		must(lc.Insert("users", scads.Row{"id": fmt.Sprintf("user%05d", i), "name": "U", "birthday": i%365 + 1}))
	}
	must(lc.FlushAll())

	const ops = 20000
	start := time.Now()
	for i := 0; i < ops; i++ {
		if _, _, err := lc.Get("users", scads.Row{"id": fmt.Sprintf("user%05d", i%2000)}); err != nil {
			must(err)
		}
	}
	elapsed := time.Since(start)
	iv := lc.Monitor().Roll()
	fmt.Printf("SLA: %.1f%% of requests succeed in < %s\n", paperSLA().Percentile, paperSLA().LatencyBound)
	fmt.Printf("measured over %d point reads on a live 4-node cluster (RF=2):\n", ops)
	fmt.Printf("  throughput:        %.0f req/s\n", float64(ops)/elapsed.Seconds())
	fmt.Printf("  p99.9 latency:     %s   (bound: %s)\n", iv.Latency, paperSLA().LatencyBound)
	fmt.Printf("  success rate:      %.4f%% (floor: %.1f%%)\n", iv.SuccessRate, paperSLA().SuccessRate)
	met := "MET"
	if !iv.Met {
		met = "VIOLATED"
	}
	fmt.Printf("  SLA:               %s\n", met)
}

// --- E4b ---

func runE4b() {
	fmt.Println("the same contended counter (8 writers x 50 increments) under each")
	fmt.Println("write-consistency mode, plus 32 concurrent wall posts under merge:")
	fmt.Printf("\n  %-22s %14s\n", "write mode", "lost updates")
	fmt.Printf("  %-22s %14.0f\n", "last-write-wins", counterLoss("last-write-wins"))
	fmt.Printf("  %-22s %14.0f\n", "serializable", counterLoss("serializable"))
	fmt.Printf("  %-22s %14.0f   (union of posts; lost posts)\n", "merge(union)", mergeLoss())
	fmt.Println("\nthe spectrum of §3.3.1: LWW silently drops concurrent increments,")
	fmt.Println("serializable recovers RDBMS behaviour, and merge converges without locks")
	fmt.Println("when the developer supplies a commutative resolution function.")
}

func counterLoss(mode string) float64 {
	lc, err := scads.NewLocalCluster(2, scads.Config{})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	must(lc.ApplyConsistency(fmt.Sprintf("namespace users { write: %s; }", mode)))
	const workers, iters = 8, 50
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < iters; i++ {
				if mode == "serializable" {
					lc.UpdateFunc("users", scads.Row{"id": "ctr"}, func(cur scads.Row) (scads.Row, error) {
						n := int64(0)
						if cur != nil {
							n = cur["birthday"].(int64)
						}
						return scads.Row{"id": "ctr", "birthday": n + 1}, nil
					})
				} else {
					cur, _, _ := lc.Get("users", scads.Row{"id": "ctr"})
					n := int64(0)
					if cur != nil {
						n = cur["birthday"].(int64)
					}
					runtime.Gosched() // app think time between read and write
					lc.Insert("users", scads.Row{"id": "ctr", "birthday": n + 1})
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	cur, _, _ := lc.Get("users", scads.Row{"id": "ctr"})
	got := int64(0)
	if cur != nil {
		got = cur["birthday"].(int64)
	}
	return float64(workers*iters) - float64(got)
}

func mergeLoss() float64 {
	lc, err := scads.NewLocalCluster(2, scads.Config{})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	must(lc.ApplyConsistency(`namespace users { write: merge(union); }`))
	const workers = 32
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			lc.Insert("users", scads.Row{"id": "wall", "name": fmt.Sprintf("post-%02d", w), "birthday": 1})
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	cur, _, _ := lc.Get("users", scads.Row{"id": "wall"})
	missing := 0
	posts := ""
	if cur != nil {
		posts = cur["name"].(string)
	}
	for w := 0; w < workers; w++ {
		if !strings.Contains(posts, fmt.Sprintf("post-%02d", w)) {
			missing++
		}
	}
	return float64(missing)
}

// --- E4c ---

func runE4c() {
	vc := clock.NewVirtual(t0)
	q := replication.NewQueue(replication.ByDeadline)
	pump := replication.NewPump(q, func(ns, node string, recs []record.Record) error { return nil }, vc)

	const bound = 10 * time.Second
	var worst time.Duration
	fmt.Printf("declared staleness bound: %s (\"stale data gone within 10 seconds\")\n", bound)
	fmt.Println("write burst 50/s for 120s, replication drains 48/s:")
	fmt.Printf("\n  %6s %10s %14s\n", "t(s)", "backlog", "staleness")
	ver := uint64(0)
	for tick := 0; tick < 300; tick++ {
		if tick < 120 {
			for w := 0; w < 50; w++ {
				ver++
				pump.Enqueue("profiles", record.Record{Key: []byte{byte(w)}, Version: ver},
					[]string{"replica"}, bound)
			}
		}
		st := pump.Tracker().Staleness("profiles", "replica")
		if st > worst {
			worst = st
		}
		if tick%20 == 0 {
			fmt.Printf("  %6d %10d %14s\n", tick, pump.Queue().Len(), st.Truncate(time.Millisecond))
		}
		pump.Drain(48)
		vc.Advance(time.Second)
	}
	stats := pump.Stats()
	fmt.Printf("\n  max observed staleness: %s (bound %s)\n", worst, bound)
	fmt.Printf("  deadline violations:    %d of %d deliveries\n", stats.Violations, stats.Delivered)
	fmt.Println("\nreads consult the staleness tracker: a replica whose pending backlog is")
	fmt.Println("older than the bound is skipped (or the read fails/stalls, per the")
	fmt.Println("namespace's declared priority order — see experiment e4d and the")
	fmt.Println("TestStalenessBoundArbitration integration test).")
}

// --- E4d ---

func runE4d() {
	frac := func(useSession bool) float64 {
		lc, err := scads.NewLocalCluster(2, scads.Config{ReplicationFactor: 2})
		must(err)
		defer lc.Close()
		must(lc.DefineSchema(socialDDL))
		must(lc.ApplyConsistency(`namespace users { session: read-your-writes; }`))
		const trials = 500
		seen := 0
		for i := 0; i < trials; i++ {
			id := fmt.Sprintf("u%04d", i)
			r := scads.Row{"id": id, "name": "N", "birthday": 1}
			if useSession {
				sess := lc.NewSession("users")
				lc.InsertSession("users", r, sess)
				if _, found, _ := lc.GetSession("users", scads.Row{"id": id}, sess); found {
					seen++
				}
			} else {
				lc.Insert("users", r)
				if _, found, _ := lc.Get("users", scads.Row{"id": id}); found {
					seen++
				}
			}
		}
		return 100 * float64(seen) / trials
	}
	fmt.Println("write, then immediately read, while replication to the second replica")
	fmt.Println("is still in flight (RF=2, reads rotate across replicas):")
	fmt.Printf("\n  %-28s %22s\n", "mode", "saw own write")
	fmt.Printf("  %-28s %21.1f%%\n", "no session", frac(false))
	fmt.Printf("  %-28s %21.1f%%\n", "read-your-writes session", frac(true))
	fmt.Println("\n\"I must read my own writes\" (Figure 4): the session floor forces the")
	fmt.Println("read to fail over from the stale replica to one that has the write.")
}

// --- E4e ---

func runE4e() {
	fmt.Println("durability SLA: replicas required so committed writes persist, given the")
	fmt.Println("probability a node dies within one repair window (analytic + Monte Carlo):")
	fmt.Printf("\n  %10s %14s %10s %18s %16s\n", "p(fail)", "target", "replicas", "analytic-survival", "monte-carlo")
	for _, pFail := range []float64{0.01, 0.05} {
		for _, target := range []float64{0.99, 0.999, 0.99999} {
			r, err := consistency.RequiredReplicas(pFail, target)
			must(err)
			an := consistency.SurvivalProbability(pFail, r)
			mc := consistency.MonteCarloSurvival(pFail, r, 400000, 7)
			fmt.Printf("  %10.2f %13.3f%% %10d %18.6f %16.6f\n", pFail, 100*target, r, an, mc)
		}
	}
	fmt.Println("\n\"for high volume but less-important data, such as old comments, relaxing")
	fmt.Println("this probability could save on replication costs\" (§3.3.1): dropping from")
	fmt.Println("five nines to two nines saves a replica at p=0.01.")
}

// --- E5 ---

func runE5() {
	fmt.Println("the birthday query against a probe user with exactly 20 friends, as the")
	fmt.Println("background population grows 100x (the §1.1 scale-independence claim):")
	fmt.Printf("\n  %12s %14s %16s %14s\n", "users", "median-us", "p99-us", "rows")
	for _, users := range []int{1000, 10000, 100000} {
		med, p99, rows := e5Probe(users)
		fmt.Printf("  %12d %14.0f %16.0f %14d\n", users, med, p99, rows)
	}
	fmt.Println("\nresponse time is flat in the number of users: every execution is one")
	fmt.Println("bounded contiguous index scan regardless of total data volume.")
}

func e5Probe(users int) (medianUS, p99US float64, rows int) {
	lc, err := scads.NewLocalCluster(4, scads.Config{})
	must(err)
	defer lc.Close()
	must(lc.DefineSchema(socialDDL))
	for i := 0; i < users; i++ {
		must(lc.Insert("users", scads.Row{"id": fmt.Sprintf("user%07d", i), "name": "U", "birthday": i%365 + 1}))
		if i%2000 == 1999 {
			must(lc.FlushAll())
		}
	}
	must(lc.Insert("users", scads.Row{"id": "probe", "name": "Probe", "birthday": 100}))
	for i := 0; i < 20; i++ {
		must(lc.Insert("friendships", scads.Row{"f1": "probe", "f2": fmt.Sprintf("user%07d", i)}))
	}
	must(lc.FlushAll())

	const trials = 2000
	lats := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		rs, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "probe"})
		must(err)
		lats = append(lats, float64(time.Since(start).Microseconds()))
		rows = len(rs)
	}
	sortFloats(lats)
	return lats[len(lats)/2], lats[len(lats)*99/100], rows
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// --- E6 ---

func runE6() {
	facebook := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY friendships ( f1 string, f2 string, PRIMARY KEY (f1, f2), CARDINALITY f1 5000, CARDINALITY f2 5000 )
QUERY friendsOf SELECT u.* FROM friendships f JOIN users u ON f.f2 = u.id WHERE f.f1 = ?user LIMIT 100
`
	twitter := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows ( follower string, followee string, PRIMARY KEY (follower, followee) )
QUERY followersOf SELECT u.* FROM follows f JOIN users u ON f.follower = u.id WHERE f.followee = ?user LIMIT 100
`
	fmt.Println("\"the limit of 5,000 friends per user on Facebook [allows] interesting")
	fmt.Println("joins ... a system like Twitter would not map into our system without")
	fmt.Println("modification\" (§2.3). The analyzer decides at schema-definition time:")

	sF := query.MustParse(facebook)
	resF, errF := analyzer.Analyze(sF, analyzer.Config{})
	fmt.Printf("\n  Facebook-style schema (CARDINALITY 5000 declared):\n")
	if errF == nil {
		r := resF["friendsOf"]
		fmt.Printf("    ACCEPTED: shape=%s fanout=%d update-work=%d (O(K), K=10000)\n",
			r.Shape, r.Fanout, r.UpdateWork)
	} else {
		fmt.Printf("    unexpectedly rejected: %v\n", errF)
	}

	sT := query.MustParse(twitter)
	_, errT := analyzer.Analyze(sT, analyzer.Config{})
	fmt.Printf("\n  Twitter-style schema (unbounded followers):\n")
	if errT != nil {
		fmt.Printf("    REJECTED: %v\n", firstLine(errT.Error()))
	} else {
		fmt.Printf("    unexpectedly accepted\n")
	}
}

// --- E7 ---

func runE7() {
	svc := paperService()
	trace := workload.Diurnal{Base: 3000, Amplitude: 2500, PeakHour: 14}
	common := sim.Config{
		Start: t0, Duration: 24 * time.Hour, Tick: time.Minute,
		Trace: trace, Service: svc, SLA: paperSLA(),
		Cloud:  cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10, BillingGranularity: time.Hour},
		Warmup: true,
	}
	e := common
	e.Mode = sim.ModeModelDriven
	elastic := sim.Run(e)

	s := common
	s.Mode = sim.ModeStatic
	s.StaticServers = sim.RequiredServers(svc, paperSLA().LatencyBound, 5500)
	static := sim.Run(s)

	fmt.Println("one diurnal day (peak 5500 req/s at 2pm, trough 500 req/s at 2am),")
	fmt.Println("$0.10 per machine-hour, hourly billing:")
	fmt.Printf("\n  %-24s %14s %12s %14s %12s\n", "provisioning", "machine-hours", "cost", "violations", "peak-servers")
	fmt.Printf("  %-24s %14.1f %11s$%.2f %13.2f%% %12d\n",
		"static (peak-sized)", static.MachineHours, "", static.CostUSD, 100*static.ViolationRate(), static.PeakServers)
	fmt.Printf("  %-24s %14.1f %11s$%.2f %13.2f%% %12d\n",
		"elastic (SCADS)", elastic.MachineHours, "", elastic.CostUSD, 100*elastic.ViolationRate(), elastic.PeakServers)
	fmt.Printf("\n  savings: %.1f%% of the static bill, at comparable SLA compliance —\n",
		100*(1-elastic.CostUSD/static.CostUSD))
	fmt.Println("  \"rapid scale-down is a new goal for massive storage systems, as there")
	fmt.Println("  is now an economic benefit to doing so\" (§1).")
}

// --- E8 ---

func runE8() {
	dl := sim.RunE8(replication.ByDeadline, t0)
	ff := sim.RunE8(replication.FIFO, t0)
	fmt.Println("mixed staleness bounds (1s and 60s), 100 writes/s against 80/s of")
	fmt.Println("propagation bandwidth for 60s — something must be late; what is?")
	fmt.Printf("\n  %-22s %18s %18s %16s\n", "queue discipline", "1s-bound late", "60s-bound late", "max 1s-staleness")
	fmt.Printf("  %-22s %18d %18d %16s\n", "deadline (SCADS)", dl.TightViolations, dl.LooseViolations, dl.MaxTightStale.Truncate(time.Millisecond))
	fmt.Printf("  %-22s %18d %18d %16s\n", "FIFO (ablation)", ff.TightViolations, ff.LooseViolations, ff.MaxTightStale.Truncate(time.Millisecond))
	fmt.Println("\n\"the priority queue allows the system to complete important updates")
	fmt.Println("first [and] easily detect when it is in danger of getting behind")
	fmt.Println("schedule\" (§3.3.2): the deadline order spends the scarce bandwidth on")
	fmt.Println("tight bounds; FIFO blows through them while loose bounds had slack.")
}

// --- helpers ---

// must aborts the experiment run on an unexpected error. log.Fatal
// rather than panic: an operational failure (port in use, disk full)
// should print one line, not a goroutine dump — panic(err) is reserved
// for the library's Must* static-input constructors.
func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
