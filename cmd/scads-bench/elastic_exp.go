package main

import (
	"fmt"
	"log"

	"scads"
	"scads/internal/expgrid"
)

// runE16 closes the Figure 2 loop end to end: three workload
// scenarios (diurnal cycle, flash crowd, hotspot shift) drive the
// SLO-observing director against a real LocalCluster, every scale
// action moving data through the lossless migration path while a
// background writer hammers acked writes. Control-plane metrics
// (SLO-violation minutes, server-hours, cost) are deterministic —
// synthetic per-class telemetry on a virtual clock — and gated via
// the committed BENCH_e16.json baseline; lost/corrupted acked writes
// are a hard zero on every run.
//
// No grid parameters: the scenarios are fully declared in code, and a
// multi-repeat grid row proves the control-plane metrics come back
// bit-identical on every repeat.
func runE16(expgrid.Params) (expgrid.Metrics, error) {
	scenarios := []scads.ElasticScenario{
		scads.ElasticDiurnalScenario(),
		scads.ElasticFlashCrowdScenario(),
		scads.ElasticHotspotShiftScenario(),
	}
	metrics := make(expgrid.Metrics)
	lost, corrupt := 0, 0
	fmt.Printf("%-14s %6s %6s %6s %10s %10s %9s %7s %7s %9s\n",
		"scenario", "ticks", "peak", "final", "viol-min", "srv-hours", "cost-usd", "ups", "downs", "acked")
	for _, sc := range scenarios {
		res, err := scads.RunElasticScenario(sc)
		must(err)
		fmt.Printf("%-14s %6d %6d %6d %10.1f %10.2f %9.2f %7d %7d %9d\n",
			res.Name, res.Ticks, res.PeakServers, res.FinalServers,
			res.SLOViolationMinutes, res.ServerHours, res.CostUSD,
			res.ScaleUps, res.ScaleDowns, res.AckedWrites)
		lost += res.LostWrites
		corrupt += res.CorruptReads
		metrics[res.Name+"_slo_violation_min"] = res.SLOViolationMinutes
		metrics[res.Name+"_server_hours"] = res.ServerHours
		metrics[res.Name+"_cost_usd"] = res.CostUSD
		metrics[res.Name+"_peak_servers"] = float64(res.PeakServers)
	}
	metrics["lost_acked_writes"] = float64(lost)
	metrics["corrupted_acked_writes"] = float64(corrupt)
	fmt.Println()
	fmt.Printf("  %-34s %12d\n", "lost acked writes", lost)
	fmt.Printf("  %-34s %12d\n", "corrupted acked writes", corrupt)
	if lost > 0 || corrupt > 0 {
		log.Fatalf("e16: scale events lost acked writes (lost=%d corrupt=%d)", lost, corrupt)
	}
	fmt.Println("  zero acked writes lost across all scale events")
	return metrics, nil
}
