// Command scads-vet runs the repo's custom static analyzers — the
// mechanical enforcement of invariants the test suite can only probe:
//
//	determinism      no wall clock / ambient randomness / map-order
//	                 leaks in the elastic control plane (e16's
//	                 bit-identical-metrics contract)
//	nogob            encoding/gob only in the e15 lockstep ablation
//	rpcretry         coordinator paths classify ErrFenced/unreachable
//	                 through the shared retry budgets
//	panicdiscipline  panic on non-constant data only in Must* funcs
//	locksafety       no copied locks; no Lock() without an Unlock path
//
// Usage:
//
//	go run ./cmd/scads-vet ./...            # whole tree (the CI gate)
//	go run ./cmd/scads-vet ./internal/sla   # one package
//	go run ./cmd/scads-vet -run determinism ./...
//	go run ./cmd/scads-vet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// are suppressed in place with a reasoned //lint:KEY-ok comment; bare
// or stale suppressions are themselves findings, so the gate fails on
// any suppression lacking a reason string.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"

	"scads/internal/lint"
	"scads/internal/lint/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "only run analyzers whose name matches this regexp")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scads-vet [-list] [-run regexp] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scads-vet: bad -run regexp: %v\n", err)
			os.Exit(2)
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	pkgs, err := analysis.Load(analysis.LoadConfig{}, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scads-vet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	total := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scads-vet: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				if cwd != "" {
					if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
						d.Pos.Filename = rel
					}
				}
				fmt.Println(d)
				total++
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "scads-vet: %d finding(s)\n", total)
		os.Exit(1)
	}
}
