// Command scads-server runs one SCADS storage node: the ordered,
// versioned key-value engine (memtable + WAL + SSTables) served over
// the binary TCP protocol. A coordinator (the scads library, the
// load generator, or another tool) routes table, index, and
// replication traffic to it.
//
// Usage:
//
//	scads-server -addr :7070 -data /var/lib/scads -id node-1
//
// With -data "" the node runs fully in memory (useful for demos).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // -pprof debug endpoint
	"os"
	"os/signal"
	"syscall"
	"time"

	"scads/internal/cluster"
	"scads/internal/rpc"
	"scads/internal/storage"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "listen address")
		dataDir    = flag.String("data", "", "data directory (empty = in-memory)")
		nodeID     = flag.String("id", "", "node ID (default: derived from address)")
		numID      = flag.Uint("numeric-id", 1, "numeric node ID mixed into record versions (16 bits)")
		memLimit   = flag.Int64("memtable-bytes", 4<<20, "memtable flush threshold")
		cacheBytes = flag.Int64("cache-bytes", 0, "read-cache capacity (0 = default 32 MiB, negative disables)")
		blockCache = flag.Int64("block-cache-bytes", 32<<20, "decoded SSTable block cache capacity (0 disables)")
		compRate   = flag.Int64("compaction-rate", 0, "background compaction throttle in input bytes/sec (0 = unlimited)")
		syncWrites = flag.Bool("sync-writes", false, "fsync (group-committed) before acknowledging each write")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("scads-server: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("scads-server: pprof: %v", err)
			}
		}()
	}

	id := *nodeID
	if id == "" {
		id = "node@" + *addr
	}
	engine, err := storage.Open(storage.Options{
		Dir:                 *dataDir,
		NodeID:              uint16(*numID),
		MemtableBytes:       *memLimit,
		CacheBytes:          *cacheBytes,
		BlockCacheBytes:     *blockCache,
		CompactionRateBytes: *compRate,
		SyncWrites:          *syncWrites,
	})
	if err != nil {
		log.Fatalf("scads-server: open storage: %v", err)
	}
	node := cluster.NewNode(id, engine)
	server := rpc.NewServer(node)
	bound, err := server.Listen(*addr)
	if err != nil {
		log.Fatalf("scads-server: %v", err)
	}
	log.Printf("scads-server %s serving on %s (data=%q)", id, bound, *dataDir)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s := engine.Stats()
			log.Printf("stats: namespaces=%d records=%d memtable=%dB tables=%d reads=%d writes=%d",
				s.Namespaces, s.RecordCount, s.MemtableBytes, s.TableCount,
				node.ReadCount(), node.WriteCount())
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "scads-server: %v, shutting down\n", sig)
			server.Close()
			if err := engine.Close(); err != nil {
				log.Fatalf("scads-server: close: %v", err)
			}
			return
		}
	}
}
