// Command scads-director runs the paper's Figure 2 provisioning
// feedback loop as a standalone demonstration: a chosen workload trace
// plays against a simulated utility-computing cloud in accelerated
// virtual time, while the director observes the SLA monitor, updates
// its performance models, and scales the cluster up and down. Every
// control decision streams to stdout.
//
// Usage:
//
//	scads-director -trace animoto -policy model -duration 72h
//	scads-director -trace diurnal -policy reactive -duration 24h
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/sim"
	"scads/internal/workload"
)

func main() {
	var (
		traceName = flag.String("trace", "diurnal", "workload trace: constant|diurnal|spike|viral|animoto")
		policy    = flag.String("policy", "model", "provisioning policy: model|reactive|static")
		duration  = flag.Duration("duration", 24*time.Hour, "simulated duration")
		tick      = flag.Duration("tick", time.Minute, "control interval")
		static    = flag.Int("static-servers", 10, "cluster size for -policy static")
		boot      = flag.Duration("boot-delay", 90*time.Second, "instance boot delay")
		price     = flag.Float64("price", 0.10, "price per machine-hour (USD)")
		capacity  = flag.Float64("capacity", 1000, "requests/second one server sustains")
		every     = flag.Int("print-every", 15, "print every Nth control tick")
	)
	flag.Parse()

	start := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	svc := cloudsim.ServiceModel{
		CapacityPerServer: *capacity,
		Base:              5 * time.Millisecond,
		K:                 30 * time.Millisecond,
	}

	var trace workload.Trace
	switch *traceName {
	case "constant":
		trace = workload.Constant(*capacity * 3)
	case "diurnal":
		trace = workload.Diurnal{Base: *capacity * 3, Amplitude: *capacity * 2.5, PeakHour: 14}
	case "spike":
		trace = workload.Spike{
			Baseline: workload.Constant(*capacity * 2), At: start.Add(6 * time.Hour),
			Rise: 10 * time.Minute, Duration: 4 * time.Hour, Magnitude: 5,
		}
	case "viral":
		trace = workload.Viral{Start: start, InitialRate: *capacity, DoublingTime: 45 * time.Minute}
	case "animoto":
		trace = workload.AnimotoTrace(start, *capacity)
	default:
		log.Fatalf("unknown trace %q", *traceName)
	}

	var mode sim.Mode
	switch *policy {
	case "model":
		mode = sim.ModeModelDriven
	case "reactive":
		mode = sim.ModeReactive
	case "static":
		mode = sim.ModeStatic
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := sim.Config{
		Start:    start,
		Duration: *duration,
		Tick:     *tick,
		Trace:    trace,
		Service:  svc,
		SLA: consistency.PerformanceSLA{
			Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.9,
		},
		Cloud:         cloudsim.Options{BootDelay: *boot, PricePerHour: *price},
		Mode:          mode,
		StaticServers: *static,
		InitialServers: func() int {
			if *traceName == "animoto" {
				return 50
			}
			return 3
		}(),
		Warmup: mode == sim.ModeModelDriven,
	}

	fmt.Printf("# scads-director: trace=%s policy=%s duration=%v tick=%v boot=%v\n",
		*traceName, mode, *duration, *tick, *boot)
	fmt.Printf("# %-8s %12s %8s %8s %8s %12s %9s %s\n",
		"hour", "rate(req/s)", "running", "booting", "target", "p-latency", "success%", "sla")

	res := sim.Run(cfg)
	for i, tk := range res.Ticks {
		if i%*every != 0 && tk.Met {
			continue
		}
		status := "ok"
		if !tk.Met {
			status = "VIOLATION"
		}
		fmt.Printf("  %-8.2f %12.0f %8d %8d %8d %12s %9.2f %s\n",
			tk.T.Sub(start).Hours(), tk.Rate, tk.Running, tk.Booting, tk.Target,
			tk.Latency.Truncate(time.Microsecond), tk.SuccessRate, status)
	}
	fmt.Printf("\nsummary: peak=%d servers, final=%d, violations=%d/%d (%.2f%%), machine-hours=%.1f, cost=$%.2f\n",
		res.PeakServers, res.FinalServers, res.Violations, res.Intervals,
		100*res.ViolationRate(), res.MachineHours, res.CostUSD)
}
