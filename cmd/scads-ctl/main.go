// Command scads-ctl is the operator tool for running storage nodes: it
// speaks the same binary TCP protocol the coordinator uses and lets an
// operator ping nodes, dump per-node statistics, read raw keys, scan
// key ranges, and drop ranges during manual repartitioning.
//
// Usage:
//
//	scads-ctl -addr host:7070 ping
//	scads-ctl -addr host:7070 stats
//	scads-ctl -addr host:7070 get  -ns tbl_users -key user0001
//	scads-ctl -addr host:7070 scan -ns tbl_users -start a -end z -limit 20
//	scads-ctl -addr a:7070,b:7070 stats        # fan out to many nodes
//	scads-ctl -addr host:7070 droprange -ns tbl_users -start a -end b
//	scads-ctl -addr host:7070 watermark -ns tbl_users
//	scads-ctl -addr host:7070 fence   -ns tbl_users -start a -end b
//	scads-ctl -addr host:7070 unfence -ns tbl_users -start a -end b
//	scads-ctl -addr coord:7071 repairs     # coordinator admin port
//	scads-ctl -addr coord:7071 tenants     # admission quota/shed counters
//
// watermark prints the namespace's apply epoch/sequence — the delta
// baseline online migrations catch up from (plus the node's highest
// accepted record version, the freshness signal failover ranks
// replicas by); comparing a donor's watermark across two probes shows
// whether it is still taking writes. fence/unfence install and lift a
// migration write fence by hand (repair tooling; the migration manager
// drives them itself). stats includes the node's installed fence
// count. repairs queries a *coordinator's* admin listener (see
// scads.Cluster.AdminHandler) for the self-healing loop's counters and
// in-flight repair jobs.
//
// Keys are given as text; pass -hex to supply hex-encoded binary keys
// (index namespaces use order-preserving binary encodings).
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"scads/internal/rpc"
)

func main() {
	var (
		addrs = flag.String("addr", "127.0.0.1:7070", "node address(es), comma-separated")
		ns    = flag.String("ns", "", "namespace (tbl_<table>, idx_<query>, view_<query>)")
		key   = flag.String("key", "", "key for get")
		start = flag.String("start", "", "range start (inclusive) for scan/droprange")
		end   = flag.String("end", "", "range end (exclusive; empty = to namespace end)")
		limit = flag.Int("limit", 50, "max records for scan")
		isHex = flag.Bool("hex", false, "keys/bounds are hex-encoded binary")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		flag.Usage()
		os.Exit(2)
	}

	tr := rpc.NewTCPTransport()
	exit := 0
	for _, addr := range strings.Split(*addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		if err := runOne(tr, addr, cmd, params{
			ns: *ns, key: *key, start: *start, end: *end, limit: *limit, hex: *isHex,
		}); err != nil {
			log.Printf("%s: %v", addr, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

type params struct {
	ns, key, start, end string
	limit               int
	hex                 bool
}

func (p params) decode(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	if p.hex {
		return hex.DecodeString(s)
	}
	return []byte(s), nil
}

func runOne(tr rpc.Transport, addr, cmd string, p params) error {
	switch cmd {
	case "ping":
		resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodPing})
		if err != nil {
			return err
		}
		if e := resp.Error(); e != nil {
			return e
		}
		fmt.Printf("%s: ok\n", addr)
		return nil

	case "stats":
		resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodStats})
		if err != nil {
			return err
		}
		if e := resp.Error(); e != nil {
			return e
		}
		fmt.Printf("%s: records=%d queue-depth=%d fenced-ranges=%d\n", addr, resp.RecordCount, resp.QueueDepth, resp.Fenced)
		return nil

	case "get":
		if p.ns == "" || p.key == "" {
			return fmt.Errorf("get needs -ns and -key")
		}
		k, err := p.decode(p.key)
		if err != nil {
			return err
		}
		resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodGet, Namespace: p.ns, Key: k})
		if err != nil {
			return err
		}
		if e := resp.Error(); e != nil {
			return e
		}
		if !resp.Found {
			fmt.Printf("%s: (not found)\n", addr)
			return nil
		}
		fmt.Printf("%s: version=%d value=%s\n", addr, resp.Version, printable(resp.Value))
		return nil

	case "scan":
		if p.ns == "" {
			return fmt.Errorf("scan needs -ns")
		}
		s, err := p.decode(p.start)
		if err != nil {
			return err
		}
		e, err := p.decode(p.end)
		if err != nil {
			return err
		}
		resp, err := tr.Call(addr, rpc.Request{
			Method: rpc.MethodScan, Namespace: p.ns, Start: s, End: e, Limit: p.limit,
		})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		for _, rec := range resp.Records {
			fmt.Printf("%s: key=%s version=%d value=%s\n",
				addr, printable(rec.Key), rec.Version, printable(rec.Value))
		}
		fmt.Printf("%s: %d record(s)\n", addr, len(resp.Records))
		return nil

	case "droprange":
		if p.ns == "" {
			return fmt.Errorf("droprange needs -ns")
		}
		s, err := p.decode(p.start)
		if err != nil {
			return err
		}
		e, err := p.decode(p.end)
		if err != nil {
			return err
		}
		resp, err := tr.Call(addr, rpc.Request{
			Method: rpc.MethodDropRange, Namespace: p.ns, Start: s, End: e,
		})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		fmt.Printf("%s: range dropped (%d memtable records unlinked)\n", addr, resp.RecordCount)
		return nil

	case "watermark":
		if p.ns == "" {
			return fmt.Errorf("watermark needs -ns")
		}
		resp, err := tr.Call(addr, rpc.Request{
			Method: rpc.MethodRangeSnapshot, Namespace: p.ns, Limit: -1,
		})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		fmt.Printf("%s: epoch=%d seq=%d\n", addr, resp.Epoch, resp.Watermark)
		return nil

	case "tenants":
		resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodTenants})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		fmt.Printf("%s: in-flight=%d total-sheds=%d\n", addr, resp.QueueDepth, resp.RecordCount)
		for _, line := range strings.Split(strings.TrimRight(string(resp.Value), "\n"), "\n") {
			fmt.Printf("%s:   %s\n", addr, line)
		}
		return nil

	case "repairs":
		resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodRepairs})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		fmt.Printf("%s: %d repair job(s) in flight\n", addr, resp.RecordCount)
		for _, line := range strings.Split(strings.TrimRight(string(resp.Value), "\n"), "\n") {
			fmt.Printf("%s:   %s\n", addr, line)
		}
		return nil

	case "fence", "unfence":
		if p.ns == "" {
			return fmt.Errorf("%s needs -ns", cmd)
		}
		s, err := p.decode(p.start)
		if err != nil {
			return err
		}
		e, err := p.decode(p.end)
		if err != nil {
			return err
		}
		resp, err := tr.Call(addr, rpc.Request{
			Method: rpc.MethodRangeFence, Namespace: p.ns,
			Start: s, End: e, Fence: cmd == "fence",
		})
		if err != nil {
			return err
		}
		if er := resp.Error(); er != nil {
			return er
		}
		fmt.Printf("%s: %sd\n", addr, cmd)
		return nil

	default:
		return fmt.Errorf("unknown command %q (ping, stats, get, scan, droprange, watermark, fence, unfence, repairs, tenants)", cmd)
	}
}

// printable renders a value, hex-escaping non-text bytes (index keys
// use binary order-preserving encodings).
func printable(b []byte) string {
	for _, c := range b {
		if c < 0x20 || c > 0x7e {
			return "0x" + hex.EncodeToString(b)
		}
	}
	return string(b)
}
