package main

import (
	"strings"
	"testing"

	"scads"

	"scads/internal/cluster"
	"scads/internal/record"
	"scads/internal/rpc"
	"scads/internal/storage"
)

// startNode boots a real TCP storage node and returns its address.
func startNode(t *testing.T) string {
	t.Helper()
	engine, err := storage.Open(storage.Options{NodeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := cluster.NewNode("test-node", engine)
	server := rpc.NewServer(node)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return addr
}

func seed(t *testing.T, addr string, keys ...string) {
	t.Helper()
	tr := rpc.NewTCPTransport()
	for i, k := range keys {
		resp, err := tr.Call(addr, rpc.Request{
			Method: rpc.MethodApply, Namespace: "tbl_users",
			Records: []record.Record{{Key: []byte(k), Value: []byte("v" + k), Version: uint64(i + 1)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if e := resp.Error(); e != nil {
			t.Fatal(e)
		}
	}
}

func TestCtlPingStatsGetScan(t *testing.T) {
	addr := startNode(t)
	seed(t, addr, "alice", "bob", "carol")
	tr := rpc.NewTCPTransport()

	if err := runOne(tr, addr, "ping", params{}); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := runOne(tr, addr, "stats", params{}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := runOne(tr, addr, "get", params{ns: "tbl_users", key: "alice", limit: 50}); err != nil {
		t.Fatalf("get: %v", err)
	}
	if err := runOne(tr, addr, "scan", params{ns: "tbl_users", start: "a", limit: 50}); err != nil {
		t.Fatalf("scan: %v", err)
	}
}

func TestCtlDropRange(t *testing.T) {
	addr := startNode(t)
	seed(t, addr, "alice", "bob", "carol")
	tr := rpc.NewTCPTransport()
	if err := runOne(tr, addr, "droprange", params{ns: "tbl_users", start: "a", end: "c"}); err != nil {
		t.Fatalf("droprange: %v", err)
	}
	resp, err := tr.Call(addr, rpc.Request{
		Method: rpc.MethodScan, Namespace: "tbl_users", Limit: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Records) != 1 || string(resp.Records[0].Key) != "carol" {
		t.Fatalf("after droprange: %d records", len(resp.Records))
	}
}

func TestCtlArgValidation(t *testing.T) {
	addr := startNode(t)
	tr := rpc.NewTCPTransport()
	if err := runOne(tr, addr, "get", params{}); err == nil {
		t.Fatal("get without -ns/-key should fail")
	}
	if err := runOne(tr, addr, "scan", params{}); err == nil {
		t.Fatal("scan without -ns should fail")
	}
	if err := runOne(tr, addr, "bogus", params{}); err == nil ||
		!strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("bogus command error = %v", err)
	}
}

func TestCtlHexKeys(t *testing.T) {
	addr := startNode(t)
	seed(t, addr, "k")
	tr := rpc.NewTCPTransport()
	// "k" = 0x6b
	if err := runOne(tr, addr, "get", params{ns: "tbl_users", key: "6b", hex: true}); err != nil {
		t.Fatalf("hex get: %v", err)
	}
	if err := runOne(tr, addr, "get", params{ns: "tbl_users", key: "zz", hex: true}); err == nil {
		t.Fatal("invalid hex should fail")
	}
}

func TestCtlUnreachableNode(t *testing.T) {
	tr := rpc.NewTCPTransport()
	if err := runOne(tr, "127.0.0.1:1", "ping", params{}); err == nil {
		t.Fatal("ping to closed port should fail")
	}
}

func TestPrintable(t *testing.T) {
	if got := printable([]byte("hello")); got != "hello" {
		t.Errorf("printable(hello) = %q", got)
	}
	if got := printable([]byte{0x00, 0x41}); got != "0x0041" {
		t.Errorf("printable(binary) = %q", got)
	}
}

func TestCtlWatermarkAndFence(t *testing.T) {
	addr := startNode(t)
	seed(t, addr, "alice", "bob")
	tr := rpc.NewTCPTransport()

	if err := runOne(tr, addr, "watermark", params{ns: "tbl_users"}); err != nil {
		t.Fatalf("watermark: %v", err)
	}
	if err := runOne(tr, addr, "watermark", params{}); err == nil {
		t.Fatal("watermark without -ns should fail")
	}

	if err := runOne(tr, addr, "fence", params{ns: "tbl_users", start: "a", end: "c"}); err != nil {
		t.Fatalf("fence: %v", err)
	}
	// Writes inside the fence bounce with the migration fence error.
	resp, err := tr.Call(addr, rpc.Request{
		Method: rpc.MethodPut, Namespace: "tbl_users", Key: []byte("bob"), Value: []byte("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.IsFenced(resp.Error()) {
		t.Fatalf("put through fence = %v", resp.Error())
	}
	if err := runOne(tr, addr, "unfence", params{ns: "tbl_users", start: "a", end: "c"}); err != nil {
		t.Fatalf("unfence: %v", err)
	}
	resp, err = tr.Call(addr, rpc.Request{
		Method: rpc.MethodPut, Namespace: "tbl_users", Key: []byte("bob"), Value: []byte("x"),
	})
	if err != nil || resp.Error() != nil {
		t.Fatalf("put after unfence: %v %v", err, resp.Error())
	}
}

// TestCtlRepairs queries a coordinator's admin listener — the same
// wire protocol as a storage node, served by Cluster.AdminHandler —
// and renders the self-healing loop's state.
func TestCtlRepairs(t *testing.T) {
	lc, err := scads.NewLocalCluster(2, scads.Config{ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	lc.RepairNow() // one sweep so the counters are non-zero

	server := rpc.NewServer(lc.AdminHandler())
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	tr := rpc.NewTCPTransport()

	if err := runOne(tr, addr, "repairs", params{}); err != nil {
		t.Fatalf("repairs: %v", err)
	}
	// The reply carries the rendered repair state.
	resp, err := tr.Call(addr, rpc.Request{Method: rpc.MethodRepairs})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Error(); e != nil {
		t.Fatal(e)
	}
	for _, want := range []string{"sweeps=1", "repairs:", "ranges:"} {
		if !strings.Contains(string(resp.Value), want) {
			t.Fatalf("repairs output missing %q:\n%s", want, resp.Value)
		}
	}
	// Ping distinguishes a coordinator from a storage node.
	pong, err := tr.Call(addr, rpc.Request{Method: rpc.MethodPing})
	if err != nil || string(pong.Value) != "coordinator" {
		t.Fatalf("admin ping = %q err=%v", pong.Value, err)
	}
	// A repairs query against a storage node fails cleanly.
	nodeAddr := startNode(t)
	if err := runOne(tr, nodeAddr, "repairs", params{}); err == nil {
		t.Fatal("repairs against a storage node should error")
	}
}
