package scads

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestInsertBatchAndGetMulti exercises the batched public hot path
// end to end: a bulk insert lands through per-node multi-record
// applies, index maintenance keeps declared queries correct, and
// GetMulti answers positionally.
func TestInsertBatchAndGetMulti(t *testing.T) {
	lc, err := NewLocalCluster(4, Config{ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}

	rows := make([]Row, 100)
	for i := range rows {
		rows[i] = Row{"id": fmt.Sprintf("user%03d", i), "name": fmt.Sprintf("N%03d", i), "birthday": i%365 + 1}
	}
	if err := lc.InsertBatch("users", rows); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Every row visible through the ordinary read path.
	for i := 0; i < 100; i += 7 {
		r, found, err := lc.Get("users", Row{"id": fmt.Sprintf("user%03d", i)})
		if err != nil || !found {
			t.Fatalf("user%03d: found=%v err=%v", i, found, err)
		}
		if r["name"] != fmt.Sprintf("N%03d", i) {
			t.Fatalf("user%03d name = %v", i, r["name"])
		}
	}

	// GetMulti: positional hits and misses.
	pks := []Row{
		{"id": "user005"},
		{"id": "no-such-user"},
		{"id": "user099"},
	}
	got, found, err := lc.GetMulti("users", pks)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || found[1] || !found[2] {
		t.Fatalf("found = %v, want [true false true]", found)
	}
	if got[0]["name"] != "N005" || got[2]["name"] != "N099" {
		t.Fatalf("rows = %v / %v", got[0], got[2])
	}

	// Declared queries still work over batch-inserted data (the
	// asynchronous index maintenance path ran for each row).
	if err := lc.InsertBatch("friendships", []Row{
		{"f1": "user001", "f2": "user002"},
		{"f1": "user001", "f2": "user003"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "user001"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("query over batch-inserted rows returned %d rows, want 2", len(res))
	}
}

// TestInsertBatchRetiresOldIndexEntries: overwriting a row through
// InsertBatch must retire index entries derived from the old image,
// exactly like Insert.
func TestInsertBatchRetiresOldIndexEntries(t *testing.T) {
	lc, err := NewLocalCluster(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("users", Row{"id": "u1", "name": "A", "birthday": 10}); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("friendships", Row{"f1": "probe", "f2": "u1"}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Move u1's birthday via the batched path; the birthday-ordered
	// index for probe's friends must reflect only the new value.
	if err := lc.InsertBatch("users", []Row{{"id": "u1", "name": "A", "birthday": 200}}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "probe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d rows, want 1 (old index entry retired)", len(res))
	}
	if res[0]["birthday"] != int64(200) {
		t.Fatalf("birthday = %v, want 200", res[0]["birthday"])
	}

	// Duplicate primary keys inside one batch: the later row must see
	// the earlier one as its old image, so only the final birthday
	// survives in the index.
	if err := lc.InsertBatch("users", []Row{
		{"id": "u1", "name": "A", "birthday": 50},
		{"id": "u1", "name": "A", "birthday": 300},
	}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	res, err = lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "probe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("duplicate-key batch left %d index rows, want 1", len(res))
	}
	if res[0]["birthday"] != int64(300) {
		t.Fatalf("birthday = %v, want 300", res[0]["birthday"])
	}
}

// TestBatchingCoalescesUnderConcurrency: concurrent ordinary reads
// through the coordinator should produce at least some shared
// round-trips via the transport batcher, with every answer correct.
func TestBatchingCoalescesUnderConcurrency(t *testing.T) {
	lc, err := NewLocalCluster(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	// Give each transport call a realistic service time so concurrent
	// requests actually overlap and the coalescing window opens.
	lc.Transport.Clock = lc.Clock()
	lc.Transport.Latency = 200 * time.Microsecond
	const n = 50
	for i := 0; i < n; i++ {
		if err := lc.Insert("users", Row{"id": fmt.Sprintf("u%03d", i), "name": "N", "birthday": 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("u%03d", (w*37+i)%n)
				r, found, err := lc.Get("users", Row{"id": id})
				if err != nil || !found || r["id"] != id {
					t.Errorf("get %s: %v found=%v", id, err, found)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := lc.Stats()
	if st.Batching.Calls == 0 {
		t.Fatal("batcher saw no traffic")
	}
	if st.Batching.Envelopes == 0 {
		t.Fatal("no requests coalesced despite 8 concurrent readers over a slow transport")
	}
	t.Logf("batching: %d calls, %d envelopes, %d coalesced",
		st.Batching.Calls, st.Batching.Envelopes, st.Batching.Batched)
}

// TestDisableBatching keeps the opt-out honest.
func TestDisableBatching(t *testing.T) {
	lc, err := NewLocalCluster(2, Config{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("users", Row{"id": "u1", "name": "N", "birthday": 1}); err != nil {
		t.Fatal(err)
	}
	if _, found, err := lc.Get("users", Row{"id": "u1"}); err != nil || !found {
		t.Fatalf("get: %v found=%v", err, found)
	}
	if st := lc.Stats(); st.Batching.Calls != 0 {
		t.Fatalf("batching stats nonzero with batching disabled: %+v", st.Batching)
	}
}
