// Quickstart: stand up an in-process SCADS cluster, declare a schema
// with a query template, write some rows, and run the query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scads"
)

func main() {
	// Three in-process storage nodes, every range on two replicas.
	cluster, err := scads.NewLocalCluster(3, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Declare entities and queries ahead of time (paper §3.2). Every
	// query must carry a LIMIT and survive the scale-independence
	// analysis, or the whole schema is rejected.
	err = cluster.DefineSchema(`
ENTITY books (
    isbn string PRIMARY KEY,
    title string,
    author string,
    year int
)
QUERY findBook
SELECT * FROM books WHERE isbn = ?isbn LIMIT 1

QUERY recentBooks
SELECT * FROM books WHERE year >= ?since ORDER BY year LIMIT 10
`)
	if err != nil {
		log.Fatal(err)
	}

	// Declare what consistency means for this data (paper §3.3).
	err = cluster.ApplyConsistency(`
namespace books {
  performance: 99.9% reads < 100ms, 99.99% success;
  write: last-write-wins;
  staleness: 30s;
  durability: 99.999%;
  priority: availability > read-consistency;
}
`)
	if err != nil {
		log.Fatal(err)
	}

	// Write.
	books := []scads.Row{
		{"isbn": "978-0", "title": "The Mythical Man-Month", "author": "Brooks", "year": 1975},
		{"isbn": "978-1", "title": "Transaction Processing", "author": "Gray & Reuter", "year": 1992},
		{"isbn": "978-2", "title": "Designing Data-Intensive Applications", "author": "Kleppmann", "year": 2017},
	}
	for _, b := range books {
		if err := cluster.Insert("books", b); err != nil {
			log.Fatal(err)
		}
	}
	// Index maintenance and replication are asynchronous; drain them
	// so this demo's queries see everything.
	if err := cluster.FlushAll(); err != nil {
		log.Fatal(err)
	}

	// Point lookup by primary key.
	book, found, err := cluster.Get("books", scads.Row{"isbn": "978-2"})
	if err != nil || !found {
		log.Fatalf("get: %v found=%v", err, found)
	}
	fmt.Printf("Get(978-2): %s by %s (%d)\n", book["title"], book["author"], book["year"])

	// Declared query template: a bounded contiguous index range scan.
	rows, err := cluster.Query("recentBooks", map[string]any{"since": 1990})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBooks since 1990, oldest first:")
	for _, r := range rows {
		fmt.Printf("  %d  %s\n", r["year"], r["title"])
	}

	// An ad-hoc unbounded query cannot even be expressed: templates
	// without LIMIT are rejected at definition time.
	err = cluster.DefineSchema(`
ENTITY scratch ( id string PRIMARY KEY )
QUERY full SELECT * FROM scratch
`)
	fmt.Printf("\nDefining a LIMIT-less query fails as designed:\n  %v\n", err)

	st := cluster.Stats()
	fmt.Printf("\nstats: %d requests, replication delivered=%d violations=%d\n",
		st.SLA.TotalRequests, st.Replication.Delivered, st.Replication.Violations)
}
