// Social network: the paper's §3.2 running example end to end — the
// friends index, the friends-of-friends cascade, and the
// friends-with-upcoming-birthdays materialized join view, maintained
// asynchronously as users befriend each other and edit profiles.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"scads"
)

const schema = `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)

QUERY profile
SELECT * FROM profiles WHERE id = ?user LIMIT 1

QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000

QUERY friendsOfFriends
SELECT b.* FROM friendships a JOIN friendships b ON a.f2 = b.f1
WHERE a.f1 = ?user LIMIT 500

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func main() {
	cluster, err := scads.NewLocalCluster(4, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DefineSchema(schema); err != nil {
		log.Fatal(err)
	}
	if err := cluster.ApplyConsistency(`
namespace profiles {
  performance: 99.9% reads < 100ms, 99.99% success;
  staleness: 10m;
  session: read-your-writes;
}
namespace friendships {
  staleness: 30s;
  priority: availability > read-consistency;
}
`); err != nil {
		log.Fatal(err)
	}

	fmt.Println("the compiled Figure 3 maintenance table:")
	fmt.Println(cluster.FormatMaintenanceTable())

	// Populate a little town.
	people := []struct {
		id, name string
		birthday int
	}{
		{"alice", "Alice", 105}, {"bob", "Bob", 42}, {"carol", "Carol", 233},
		{"dave", "Dave", 17}, {"erin", "Erin", 301},
	}
	for _, p := range people {
		must(cluster.Insert("profiles", scads.Row{"id": p.id, "name": p.name, "birthday": p.birthday}))
	}
	befriend := func(a, b string) {
		must(cluster.Insert("friendships", scads.Row{"f1": a, "f2": b}))
		must(cluster.Insert("friendships", scads.Row{"f1": b, "f2": a}))
	}
	befriend("alice", "bob")
	befriend("alice", "carol")
	befriend("bob", "dave")
	befriend("carol", "erin")
	must(cluster.FlushAll()) // drain async index maintenance

	show := func(header string, rows []scads.Row, cols ...string) {
		fmt.Println(header)
		for _, r := range rows {
			fmt.Print(" ")
			for _, c := range cols {
				fmt.Printf(" %v", r[c])
			}
			fmt.Println()
		}
		fmt.Println()
	}

	rows, err := cluster.Query("friends", map[string]any{"user": "alice"})
	must(err)
	show("alice's friends:", rows, "f2")

	rows, err = cluster.Query("friendsOfFriends", map[string]any{"user": "alice"})
	must(err)
	show("alice's friends-of-friends (via the cascading self-join view):", rows, "f1", "f2")

	rows, err = cluster.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	must(err)
	show("alice's friends by upcoming birthday:", rows, "birthday", "name")

	// Bob edits his birthday; the view reorders asynchronously.
	fmt.Println("bob moves his birthday to day 360...")
	must(cluster.Insert("profiles", scads.Row{"id": "bob", "name": "Bob", "birthday": 360}))
	must(cluster.FlushAll())
	rows, err = cluster.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	must(err)
	show("alice's birthday list after the edit:", rows, "birthday", "name")

	// Unfriending removes carol from every derived structure.
	fmt.Println("alice unfriends carol...")
	must(cluster.Delete("friendships", scads.Row{"f1": "alice", "f2": "carol"}))
	must(cluster.Delete("friendships", scads.Row{"f1": "carol", "f2": "alice"}))
	must(cluster.FlushAll())
	rows, err = cluster.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	must(err)
	show("alice's birthday list after unfriending:", rows, "birthday", "name")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
