// Autoscale: the Figure 2 feedback loop riding the Figure 1 Animoto
// curve — a deterministic virtual-time simulation in which the
// director watches the SLA monitor, learns a capacity model, forecasts
// demand, and grows the cluster from 50 toward thousands of servers
// without violating the SLA, then gives the machines back.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"time"

	"scads/internal/cloudsim"
	"scads/internal/consistency"
	"scads/internal/sim"
	"scads/internal/workload"
)

func main() {
	start := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	svc := cloudsim.ServiceModel{
		CapacityPerServer: 1000,
		Base:              5 * time.Millisecond,
		K:                 30 * time.Millisecond,
	}
	sla := consistency.PerformanceSLA{
		Percentile: 99.9, LatencyBound: 100 * time.Millisecond, SuccessRate: 99.9,
	}

	// A day of viral growth (doubling every 4 hours = 64x), then the
	// fad passes and load collapses back over the second day.
	up := workload.Viral{Start: start, InitialRate: 2000, DoublingTime: 4 * time.Hour, Saturation: 128000}
	trace := riseAndFall{up: up, peakAt: start.Add(24 * time.Hour), halfLife: 3 * time.Hour}

	res := sim.Run(sim.Config{
		Start:          start,
		Duration:       48 * time.Hour,
		Tick:           time.Minute,
		Trace:          trace,
		Service:        svc,
		SLA:            sla,
		Cloud:          cloudsim.Options{BootDelay: 90 * time.Second, PricePerHour: 0.10},
		Mode:           sim.ModeModelDriven,
		InitialServers: 4,
		Warmup:         true,
	})

	fmt.Println("hour   load(req/s)  servers  sla      (one day up, one day down)")
	for i, tk := range res.Ticks {
		if i%120 != 0 {
			continue
		}
		bar := ""
		for j := 0; j < tk.Running/4 && j < 60; j++ {
			bar += "#"
		}
		status := "ok"
		if !tk.Met {
			status = "VIOLATION"
		}
		fmt.Printf("%4.0f %12.0f %8d  %-9s %s\n", tk.T.Sub(start).Hours(), tk.Rate, tk.Running, status, bar)
	}
	fmt.Printf("\npeak %d servers, final %d; violations %.2f%% of intervals; bill $%.2f\n",
		res.PeakServers, res.FinalServers, 100*res.ViolationRate(), res.CostUSD)

	// What would the bill have been without scale-down? A static
	// cluster sized for the peak, for the same 48 hours.
	staticNeed := sim.RequiredServers(svc, sla.LatencyBound, 128000)
	staticCost := float64(staticNeed) * 48 * 0.10
	fmt.Printf("statically peak-provisioned (%d servers x 48h): $%.2f  ->  elasticity saved %.0f%%\n",
		staticNeed, staticCost, 100*(1-res.CostUSD/staticCost))
}

// riseAndFall wraps a viral ramp with an exponential decay after the
// fad peaks.
type riseAndFall struct {
	up       workload.Viral
	peakAt   time.Time
	halfLife time.Duration
}

func (r riseAndFall) Rate(t time.Time) float64 {
	if t.Before(r.peakAt) {
		return r.up.Rate(t)
	}
	peak := r.up.Rate(r.peakAt)
	halvings := float64(t.Sub(r.peakAt)) / float64(r.halfLife)
	rate := peak
	for i := 0; i < int(halvings); i++ {
		rate /= 2
	}
	// Fractional halving for smoothness.
	frac := halvings - float64(int(halvings))
	rate *= 1 - frac/2
	floor := r.up.InitialRate
	if rate < floor {
		return floor
	}
	return rate
}
