// Sessions: the paper's wall-post confusion (§2.2) and its fix. A user
// posts to a wall and immediately reloads the page. Reads rotate over
// lazily-replicated replicas, so without session guarantees the post
// sometimes "disappears" — exactly the Facebook behaviour the paper
// calls out. A read-your-writes session makes the anomaly impossible,
// and the staleness bound caps how stale anyone else's read can be.
//
//	go run ./examples/sessions
package main

import (
	"fmt"
	"log"

	"scads"
)

const schema = `
ENTITY walls (
    owner string PRIMARY KEY,
    posts string
)
QUERY wall
SELECT * FROM walls WHERE owner = ?owner LIMIT 1
`

func main() {
	cluster, err := scads.NewLocalCluster(2, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DefineSchema(schema); err != nil {
		log.Fatal(err)
	}
	if err := cluster.ApplyConsistency(`
namespace walls {
  write: merge(union);          # concurrent posts are unioned, never lost
  staleness: 10m;               # "stale data gone within 10 minutes"
  session: read-your-writes;    # "I must read my own writes"
}
`); err != nil {
		log.Fatal(err)
	}

	// --- Without a session: the disappearing wall post. ---
	misses := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		owner := fmt.Sprintf("wall-%03d", i)
		if err := cluster.Insert("walls", scads.Row{"owner": owner, "posts": "happy birthday!"}); err != nil {
			log.Fatal(err)
		}
		// Immediate reload, no session: reads rotate across replicas
		// and replication is still in flight.
		if _, found, _ := cluster.Get("walls", scads.Row{"owner": owner}); !found {
			misses++
		}
	}
	fmt.Printf("no session:        %d/%d immediate reloads missed the fresh post\n", misses, trials)

	// --- With a read-your-writes session: never. ---
	misses = 0
	for i := 0; i < trials; i++ {
		owner := fmt.Sprintf("swall-%03d", i)
		sess := cluster.NewSession("walls")
		if err := cluster.InsertSession("walls", scads.Row{"owner": owner, "posts": "happy birthday!"}, sess); err != nil {
			log.Fatal(err)
		}
		if _, found, _ := cluster.GetSession("walls", scads.Row{"owner": owner}, sess); !found {
			misses++
		}
	}
	fmt.Printf("read-your-writes:  %d/%d immediate reloads missed the fresh post\n", misses, trials)

	// --- Concurrent posts to one wall converge under merge(union). ---
	wall := scads.Row{"owner": "shared"}
	done := make(chan struct{}, 3)
	for _, post := range []string{"first!", "congrats", "see you there"} {
		go func(p string) {
			defer func() { done <- struct{}{} }()
			cluster.Insert("walls", scads.Row{"owner": "shared", "posts": p})
		}(post)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	cluster.FlushAll()
	r, _, err := cluster.Get("walls", wall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthree users posted concurrently; the merged wall holds all of them:\n%s\n", r["posts"])

	// --- Monotonic reads: the session never travels back in time. ---
	sess := cluster.NewSession("walls")
	cluster.InsertSession("walls", scads.Row{"owner": "shared", "posts": "latest news"}, sess)
	backwards := 0
	for i := 0; i < 100; i++ {
		if _, found, _ := cluster.GetSession("walls", scads.Row{"owner": "shared"}, sess); !found {
			backwards++
		}
	}
	fmt.Printf("\n100 follow-up session reads, reads that went backwards in time: %d\n", backwards)
}
