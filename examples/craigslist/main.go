// Craigslist-style listings: the paper's §2.2 example of *understood*
// relaxed consistency — "the fact that a new listing will not appear
// in a search for five minutes is widely understood and considered
// acceptable by both developers and users."
//
// This example declares that contract explicitly: a five-minute
// staleness bound on the search index, availability prioritised over
// read consistency (a classifieds site would rather show a slightly
// stale search than an error page), and a developer-supplied merge
// function so concurrent edits to a listing combine instead of
// clobbering each other.
//
//	go run ./examples/craigslist
package main

import (
	"fmt"
	"log"
	"time"

	"scads"
)

func main() {
	cluster, err := scads.NewLocalCluster(3, scads.Config{ReplicationFactor: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	err = cluster.DefineSchema(`
ENTITY listings (
    id string PRIMARY KEY,
    city string,
    category string,
    title string,
    price int,
    posted time
)
QUERY getListing
SELECT * FROM listings WHERE id = ?id LIMIT 1

QUERY browseCategory
SELECT * FROM listings WHERE city = ?city AND category = ?cat
ORDER BY posted DESC LIMIT 100
`)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent edits merge: the seller lowering the price and the
	// moderation pipeline retitling the post both survive.
	cluster.RegisterRowMerge("mergeListing", func(cur, incoming scads.Row) scads.Row {
		merged := cur.Clone()
		for k, v := range incoming {
			if k == "price" {
				// Lowest advertised price wins.
				if p, ok := v.(int64); ok {
					if q, ok := merged["price"].(int64); !ok || p < q {
						merged["price"] = p
					}
				}
				continue
			}
			merged[k] = v
		}
		return merged
	})

	// The §2.2 contract, stated declaratively: searches may run five
	// minutes behind, and when requirements contend the site keeps
	// serving (stale) results rather than failing.
	err = cluster.ApplyConsistency(`
namespace listings {
  performance: 99.9% reads < 100ms, 99.99% success;
  write: merge(mergeListing);
  staleness: 5m;
  priority: availability > read-consistency;
  durability: 99.999%;
}
`)
	if err != nil {
		log.Fatal(err)
	}

	posted := time.Date(2009, 1, 4, 9, 0, 0, 0, time.UTC)
	seed := []scads.Row{
		{"id": "L1", "city": "sf", "category": "bikes", "title": "Road bike", "price": 400, "posted": posted},
		{"id": "L2", "city": "sf", "category": "bikes", "title": "Fixie", "price": 250, "posted": posted.Add(time.Minute)},
		{"id": "L3", "city": "sf", "category": "sofas", "title": "Leather couch", "price": 150, "posted": posted.Add(2 * time.Minute)},
		{"id": "L4", "city": "berkeley", "category": "bikes", "title": "Cruiser", "price": 90, "posted": posted.Add(3 * time.Minute)},
	}
	for _, r := range seed {
		if err := cluster.Insert("listings", r); err != nil {
			log.Fatal(err)
		}
	}

	// Index maintenance and replication are asynchronous with the
	// declared bound as their deadline; a real deployment runs
	// StartBackground, here we flush explicitly so the demo is
	// deterministic.
	if err := cluster.FlushAll(); err != nil {
		log.Fatal(err)
	}

	rows, err := cluster.Query("browseCategory", map[string]any{"city": "sf", "cat": "bikes"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bikes in SF (newest first):")
	for _, r := range rows {
		fmt.Printf("  %-12s $%-4d %s\n", r["id"], r["price"], r["title"])
	}

	// Two concurrent edits to L1: a price drop and a retitle.
	if err := cluster.Insert("listings", scads.Row{
		"id": "L1", "city": "sf", "category": "bikes",
		"title": "Road bike", "price": 350, "posted": posted,
	}); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Insert("listings", scads.Row{
		"id": "L1", "city": "sf", "category": "bikes",
		"title": "Road bike (Shimano groupset)", "price": 400, "posted": posted,
	}); err != nil {
		log.Fatal(err)
	}
	if err := cluster.FlushAll(); err != nil {
		log.Fatal(err)
	}
	r, _, err := cluster.Get("listings", scads.Row{"id": "L1"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter concurrent edits (merge function): $%d %q\n", r["price"], r["title"])

	stats := cluster.Stats()
	fmt.Printf("\nreplication: %d delivered, %d pending; maintenance backlog: %d\n",
		stats.Replication.Delivered, stats.Replication.Pending, stats.Maintenance)
}
