// Operations: a day in the life of a SCADS cluster — node crash and
// recovery, decommissioning before scale-down, workload-driven
// repartitioning, and the observe edge of the Figure 2 loop
// (SLA interval + replication backlog + requirement contentions).
//
//	go run ./examples/operations
package main

import (
	"fmt"
	"log"
	"time"

	"scads"
	"scads/internal/planner"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	cluster, err := scads.NewLocalCluster(3, scads.Config{ReplicationFactor: 2})
	must(err)
	defer cluster.Close()

	must(cluster.DefineSchema(`
ENTITY accounts (
    id string PRIMARY KEY,
    owner string,
    balance int
)
QUERY getAccount
SELECT * FROM accounts WHERE id = ?id LIMIT 1
`))
	must(cluster.ApplyConsistency(`
namespace accounts {
  write: serializable;
  staleness: 10s;
  durability: 99.999%;
  priority: read-consistency > availability;
}
`))

	for i := 0; i < 30; i++ {
		must(cluster.Insert("accounts", scads.Row{
			"id":      fmt.Sprintf("acct%04d", i),
			"owner":   fmt.Sprintf("Owner %d", i),
			"balance": 100 * i,
		}))
	}
	must(cluster.FlushAll())
	fmt.Println("seeded 30 accounts across 3 nodes (RF=2)")

	// --- 1. Crash and recovery -------------------------------------
	ns := planner.TableNamespace("accounts")
	m, _ := cluster.Router().Map(ns)
	victim := m.Ranges()[0].Replicas[0]
	cluster.CrashNode(victim)
	fmt.Printf("\ncrashed %s (a primary); reads fail over to surviving replicas:\n", victim)
	r, _, err := cluster.Get("accounts", scads.Row{"id": "acct0007"})
	must(err)
	fmt.Printf("  acct0007 -> owner=%q balance=%v\n", r["owner"], r["balance"])
	cluster.RecoverNode(victim)
	fmt.Printf("recovered %s\n", victim)

	// --- 2. Decommission before scale-down --------------------------
	survivors := []string{}
	for _, mem := range cluster.Directory().Up() {
		if mem.ID != victim {
			survivors = append(survivors, mem.ID)
		}
	}
	must(cluster.DecommissionNode(victim, survivors))
	fmt.Printf("\ndecommissioned %s: its ranges re-replicated onto survivors;\n", victim)
	r, _, err = cluster.Get("accounts", scads.Row{"id": "acct0007"})
	must(err)
	fmt.Printf("  acct0007 still readable -> balance=%v\n", r["balance"])

	// --- 3. Workload-driven repartitioning --------------------------
	for i := 0; i < 200; i++ {
		for j := 0; j < 5; j++ {
			cluster.Get("accounts", scads.Row{"id": fmt.Sprintf("acct%04d", j)})
		}
	}
	plan, err := cluster.Rebalance(scads.BalanceConfig{})
	must(err)
	fmt.Printf("\nskewed window tracked; rebalance plan executed (%d actions):\n", len(plan))
	for _, a := range plan {
		fmt.Printf("  %s\n", a)
	}

	// --- 4. The observe edge of Figure 2 ----------------------------
	obs := cluster.Observe(time.Second)
	fmt.Printf("\nobservation for the director: rate=%.1f req/s p%v latency=%v success=%.2f%% met=%v\n",
		obs.Rate, 99.9, obs.Latency.Round(time.Microsecond), obs.SuccessRate, obs.SLAMet)
	fmt.Printf("replication at risk: %d, contentions: %d\n",
		obs.ReplicationAtRisk, obs.Contentions)
	fmt.Println("\n(the director feeds this into its capacity model + forecast and")
	fmt.Println("requests/releases nodes through the ElasticActuator — see")
	fmt.Println("examples/autoscale for that loop riding a viral ramp)")
}
