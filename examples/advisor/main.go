// Advisor: the pre-deployment guidance flow of §2.2/§3.3.1. A
// developer submits query templates plus a workload estimate and the
// system reports — before anything runs — which templates are
// scale-independent, what the accepted ones cost to serve and
// maintain, how many servers the SLA needs, the monthly bill, and the
// expected-downtime-vs-cost curve that helps pick a replication
// policy. A Twitter-shaped template is included to show rejection
// with its reason.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"time"

	"scads"
	"scads/internal/advisor"
	"scads/internal/analyzer"
)

func main() {
	const ddl = `
ENTITY profiles (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY getProfile
SELECT * FROM profiles WHERE id = ?user LIMIT 1

QUERY friendBirthdays
SELECT p.* FROM friendships f JOIN profiles p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50

QUERY followersOf
SELECT p.* FROM follows f JOIN profiles p ON f.follower = p.id
WHERE f.followee = ?user LIMIT 100
`

	// The developer's demand estimate: a million users, read-heavy.
	workload := scads.AdviceWorkload{
		QueryRates: map[string]float64{
			"getProfile":      4000,
			"friendBirthdays": 1000,
			"followersOf":     500,
		},
		UpdateRates: map[string]float64{
			"profiles": 80, "friendships": 40, "follows": 40,
		},
		TableRows: map[string]int{
			"profiles": 1_000_000, "friendships": 20_000_000, "follows": 30_000_000,
		},
	}

	cfg := scads.AdviceConfig{
		// Day one: no fitted models yet, so the analytic capacity curve
		// stands in. Once the cluster runs, the director's fitted
		// mlmodel.CapacityModel plugs into the same slot.
		Capacity: scads.AnalyticCapacity{
			PerServer: 1000,
			Base:      5 * time.Millisecond,
			K:         30 * time.Millisecond,
		},
		SLALatency:        100 * time.Millisecond,
		ReplicationFactor: 2,
		Pricing: scads.AdvicePricing{
			PricePerHour:      0.10, // 2008 EC2 m1.small
			StoragePerGBMonth: 0.15, // 2008 S3
		},
	}

	report, err := scads.AdviseDDL(ddl, analyzer.Config{}, workload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Format())

	// The durability clause of a consistency spec ("durability:
	// 99.999%") picks off this curve automatically; here the developer
	// explores two candidate requirements by hand.
	fmt.Println()
	for _, target := range []float64{0.999, 0.99999} {
		p, ok := advisor.PickReplicas(report.Curve, target, target)
		if !ok {
			fmt.Printf("%.3f%% availability+durability: infeasible within explored replication\n",
				target*100)
			continue
		}
		fmt.Printf("%.3f%% availability+durability -> %d replicas at $%.2f/month\n",
			target*100, p.Replicas, p.MonthlyUSD)
	}
}
