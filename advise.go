package scads

import (
	"fmt"

	"scads/internal/advisor"
	"scads/internal/analyzer"
	"scads/internal/planner"
	"scads/internal/query"
)

// Re-exported advisor types: the guidance sheet of §2.2/§3.3.1.
type (
	// AdviceWorkload estimates demand for an advisory run.
	AdviceWorkload = advisor.Workload
	// AdviceConfig parameterises pricing and the capacity model.
	AdviceConfig = advisor.Config
	// AdviceReport is the full pre-deployment guidance.
	AdviceReport = advisor.Report
	// AdvicePricing prices compute and storage.
	AdvicePricing = advisor.Pricing
	// AnalyticCapacity is the closed-form day-one capacity model.
	AnalyticCapacity = advisor.AnalyticCapacity
)

// Advise predicts, for the cluster's installed schema, what the
// estimated workload will cost: per-query latency and maintenance
// bounds, per-index storage and write amplification, cluster sizing
// with a monthly bill, and the expected-downtime-vs-cost curve
// (§3.3.1). The cluster must have a schema installed.
func (c *Cluster) Advise(w AdviceWorkload, cfg AdviceConfig) (*AdviceReport, error) {
	c.mu.RLock()
	schema, results, plans := c.schema, c.analysis, c.plans
	c.mu.RUnlock()
	if schema == nil {
		return nil, ErrNoSchema
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = c.cfg.ReplicationFactor
	}
	return advisor.Advise(schema, results, nil, plans, w, cfg)
}

// AdviseDDL runs the advisor on a scadsQL program without deploying
// it — the paper's pre-deployment flow: the developer submits
// templates, the system reports which are scale-independent, what the
// accepted ones will cost, and why the rest were refused. Unlike
// DefineSchema, rejected queries do not fail the call; they appear in
// the report with their rejection reasons.
func AdviseDDL(ddl string, acfg analyzer.Config, w AdviceWorkload, cfg AdviceConfig) (*AdviceReport, error) {
	schema, err := query.Parse(ddl)
	if err != nil {
		return nil, fmt.Errorf("scads: advise: %w", err)
	}
	results := make(map[string]*analyzer.Result, len(schema.Queries))
	rejects := make(map[string]error)
	for _, name := range schema.QueryOrder {
		res, err := analyzer.AnalyzeQuery(schema, schema.Queries[name], acfg)
		if err != nil {
			rejects[name] = err
			continue
		}
		results[name] = res
	}
	plans, err := planner.Compile(schema, results)
	if err != nil {
		return nil, err
	}
	return advisor.Advise(schema, results, rejects, plans, w, cfg)
}
