package scads

// End-to-end test over real TCP sockets: the same coordinator code
// that serves the in-process tests drives storage nodes (one of them
// disk-backed) listening on localhost, exactly as the scads-server /
// scads-loadgen binaries deploy it.

import (
	"fmt"
	"testing"

	"scads/internal/clock"
	"scads/internal/cluster"
	"scads/internal/rpc"
	"scads/internal/storage"
)

func TestEndToEndOverTCP(t *testing.T) {
	clk := clock.NewReal()

	// Three nodes: two in-memory, one disk-backed (WAL + SSTables).
	var servers []*rpc.Server
	dir := cluster.NewDirectory(clk)
	for i := 0; i < 3; i++ {
		opts := storage.Options{NodeID: uint16(i + 1), MemtableBytes: 32 << 10}
		if i == 0 {
			opts.Dir = t.TempDir()
		}
		engine, err := storage.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()
		id := fmt.Sprintf("tcp-node-%d", i+1)
		srv := rpc.NewServer(cluster.NewNode(id, engine))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		defer srv.Close()
		dir.Join(id, addr)
		dir.MarkUp(id)
	}

	transport := rpc.NewTCPTransport()
	defer transport.Close()
	c, err := Open(Config{
		Clock:             clk,
		Transport:         transport,
		Directory:         dir,
		ReplicationFactor: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyConsistency(`
namespace users { session: read-your-writes; staleness: 10m; }
`); err != nil {
		t.Fatal(err)
	}

	// Writes, queries, and the join view — all over real sockets.
	for i := 0; i < 50; i++ {
		if err := c.Insert("users", Row{
			"id": fmt.Sprintf("user%03d", i), "name": fmt.Sprintf("U%d", i), "birthday": i%365 + 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 10; i++ {
		if err := c.Insert("friendships", Row{"f1": "user000", "f2": fmt.Sprintf("user%03d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}

	rows, err := c.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "user000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("birthday view over TCP = %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1]["birthday"].(int64) > rows[i]["birthday"].(int64) {
			t.Fatal("view not birthday-ordered")
		}
	}

	// Session guarantees hold across sockets too.
	sess := c.NewSession("users")
	if err := c.InsertSession("users", Row{"id": "me", "name": "Me", "birthday": 7}, sess); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, found, err := c.GetSession("users", Row{"id": "me"}, sess); err != nil || !found {
			t.Fatalf("session read %d over TCP: found=%v err=%v", i, found, err)
		}
	}

	// Kill one server process: reads fail over.
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	servers[1].Close()
	ok := 0
	for i := 0; i < 50; i++ {
		if _, found, err := c.Get("users", Row{"id": fmt.Sprintf("user%03d", i)}); err == nil && found {
			ok++
		}
	}
	if ok != 50 {
		t.Fatalf("only %d/50 reads survived a node kill", ok)
	}
}
