package scads

import (
	"testing"
)

const residualDDL = `
ENTITY posts (
    author string,
    ts int,
    score int,
    PRIMARY KEY (author, ts),
    CARDINALITY author 1000
)
QUERY hot
SELECT author, ts FROM posts WHERE author = ?a AND ts >= ?since AND score >= ?minscore LIMIT 10
QUERY topRecent
SELECT author, ts FROM posts WHERE author = ?a AND score >= ?minscore ORDER BY ts DESC LIMIT 5
`

func seedResidualCluster(t *testing.T) *LocalCluster {
	t.Helper()
	lc, err := NewLocalCluster(2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(residualDDL); err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < 30; ts++ {
		if err := lc.Insert("posts", Row{"author": "ann", "ts": ts, "score": (ts * 7) % 30}); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	return lc
}

// TestQueryResidualFilterPushdown exercises the second inequality
// conjunct: ts shapes the contiguous key range, score travels to the
// storage node as a pushed-down filter.
func TestQueryResidualFilterPushdown(t *testing.T) {
	lc := seedResidualCluster(t)

	rows, err := lc.Query("hot", map[string]any{"a": "ann", "since": 10, "minscore": 20})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: ts in [10, 30) with (ts*7)%30 >= 20, ascending ts.
	var want []int64
	for ts := 10; ts < 30; ts++ {
		if (ts*7)%30 >= 20 {
			want = append(want, int64(ts))
		}
	}
	if len(want) > 10 {
		want = want[:10]
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %v", len(rows), len(want), rows)
	}
	for i, r := range rows {
		if r["ts"] != want[i] || r["author"] != "ann" {
			t.Fatalf("row %d = %v, want ts %d", i, r, want[i])
		}
		if _, ok := r["score"]; ok {
			t.Fatalf("row %d leaked the filter-only column: %v", i, r)
		}
	}
}

// TestQueryDemotedInequalityWithOrderBy covers the analyzer demotion:
// an inequality that conflicts with ORDER BY becomes a residual filter
// instead of a rejection, the index stores the (widened) filter
// column, and results come back in declared order without it.
func TestQueryDemotedInequalityWithOrderBy(t *testing.T) {
	lc := seedResidualCluster(t)

	rows, err := lc.Query("topRecent", map[string]any{"a": "ann", "minscore": 15})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: the 5 highest ts with (ts*7)%30 >= 15, descending.
	var want []int64
	for ts := 29; ts >= 0 && len(want) < 5; ts-- {
		if (ts*7)%30 >= 15 {
			want = append(want, int64(ts))
		}
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d: %v", len(rows), len(want), rows)
	}
	for i, r := range rows {
		if r["ts"] != want[i] {
			t.Fatalf("row %d ts = %v, want %d (descending order broken or filter missed)", i, r["ts"], want[i])
		}
		if _, ok := r["score"]; ok {
			t.Fatalf("row %d leaked widened index column: %v", i, r)
		}
	}

	// The filter must keep tracking updates: drop one row's score below
	// the bar and it must vanish from the result.
	topTS := want[0]
	if err := lc.Update("posts", Row{"author": "ann", "ts": topTS, "score": 0}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	rows, err = lc.Query("topRecent", map[string]any{"a": "ann", "minscore": 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r["ts"] == topTS {
			t.Fatalf("updated row still matches the filter: %v", r)
		}
	}
}
