package scads

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/cluster"
	"scads/internal/planner"
	"scads/internal/record"
	"scads/internal/repair"
	"scads/internal/rpc"
)

// newRepairCluster boots a real-clock cluster with the self-healing
// loop tuned for test-speed detection and repair.
func newRepairCluster(t *testing.T, nodes, rf int) *LocalCluster {
	t.Helper()
	lc, err := NewLocalCluster(nodes, Config{
		ReplicationFactor: rf,
		Repair: repair.Config{
			SweepInterval:    10 * time.Millisecond,
			HeartbeatTimeout: 250 * time.Millisecond,
			ReplaceAfter:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	return lc
}

// rfRestored reports whether every range of every namespace has at
// least rf distinct serving replicas and no repair job is in flight.
func rfRestored(lc *LocalCluster, rf int) bool {
	if lc.RepairStats().PendingJobs != 0 {
		return false
	}
	for _, ns := range lc.Router().Namespaces() {
		m, ok := lc.Router().Map(ns)
		if !ok {
			return false
		}
		for _, rng := range m.Ranges() {
			if len(rng.Replicas) < rf {
				return false
			}
			seen := map[string]bool{}
			for _, id := range rng.Replicas {
				mem, ok := lc.Directory().Get(id)
				if !ok || mem.Status != cluster.StatusUp || seen[id] {
					return false
				}
				seen[id] = true
			}
		}
	}
	return true
}

func waitRFRestored(t *testing.T, lc *LocalCluster, rf int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !rfRestored(lc, rf) {
		if time.Now().After(deadline) {
			var dump []string
			for _, ns := range lc.Router().Namespaces() {
				m, _ := lc.Router().Map(ns)
				for _, rng := range m.Ranges() {
					dump = append(dump, fmt.Sprintf("%s %v", ns, rng.Replicas))
				}
			}
			t.Fatalf("RF never restored; repair stats %+v\nranges: %v", lc.RepairStats(), dump)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRepairHammerCrashRecovery is the fault-injection hammer: a
// concurrent insert/update/delete workload runs while nodes crash,
// recover, and have their replication links severed. The self-healing
// loop (failure detector → primary failover → RF repair) must keep
// every acknowledged write: after the churn settles, zero acknowledged
// writes are lost or corrupted, zero acknowledged deletes resurrect,
// and every range is back at full replication — without any manual
// intervention.
func TestRepairHammerCrashRecovery(t *testing.T) {
	lc := newRepairCluster(t, 4, 2)
	if err := lc.SplitTable("users", "user1000", "user2000", "user3000"); err != nil {
		t.Fatal(err)
	}
	if err := lc.SpreadAll(); err != nil {
		t.Fatal(err)
	}
	// Fault cycles synchronise on detector events rather than fixed
	// sleeps: a crash window only closes once the failure detector has
	// actually marked the victim down, so slow machines never recover a
	// node before the self-healing loop has seen it fail.
	downCh := make(chan string, 64)
	lc.Repairs().OnEvent = func(ev repair.Event) {
		if ev.Kind == repair.EventNodeDown {
			select {
			case downCh <- ev.Node:
			default:
			}
		}
	}
	lc.StartBackground(4)
	defer lc.StopBackground()

	type ackedState struct {
		round   int
		deleted bool
	}
	var (
		ackMu     sync.Mutex
		lastAcked = map[string]ackedState{}
		acked     atomic.Int64
		stop      atomic.Bool
	)
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
		stop.Store(true)
	}

	// Seed every range so snapshots and failovers move real data.
	const writers = 4
	for w := 0; w < writers; w++ {
		for i := 0; i < 30; i++ {
			id := fmt.Sprintf("user%04d", w*1000+i)
			if err := lc.Insert("users", Row{"id": id, "name": fmt.Sprintf("w%d-r%d", w, -1), "birthday": 1}); err != nil {
				t.Fatal(err)
			}
			lastAcked[id] = ackedState{round: -1}
			acked.Add(1)
		}
	}

	// A surfaced fence error means the coordinator exhausted its whole
	// rpc.FenceRetry budget while a repair-triggered migration held the
	// range fenced — possible on a heavily loaded machine. The write
	// was NOT acknowledged, so skipping the round (no ledger entry, no
	// acked count) preserves the zero-lost-acked-writes invariant the
	// final sweep checks; any other error is a real failure.
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := fmt.Sprintf("user%04d", w*1000+i%30)
				switch {
				case i%10 == 9:
					if err := lc.Delete("users", Row{"id": id}); err != nil {
						if rpc.IsFenced(err) {
							continue
						}
						fail("writer %d delete %s: %v", w, id, err)
						return
					}
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i, deleted: true}
					ackMu.Unlock()
				case i%17 == 16:
					// Exercise the batched write path's failover
					// fallback too.
					rows := []Row{
						{"id": id, "name": fmt.Sprintf("w%d-r%d", w, i), "birthday": i%365 + 1},
					}
					if err := lc.InsertBatch("users", rows); err != nil {
						if rpc.IsFenced(err) {
							continue
						}
						fail("writer %d batch %s: %v", w, id, err)
						return
					}
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i}
					ackMu.Unlock()
				default:
					if err := lc.Insert("users", Row{"id": id, "name": fmt.Sprintf("w%d-r%d", w, i), "birthday": i%365 + 1}); err != nil {
						if rpc.IsFenced(err) {
							continue
						}
						fail("writer %d insert %s: %v", w, id, err)
						return
					}
					ackMu.Lock()
					lastAcked[id] = ackedState{round: i}
					ackMu.Unlock()
				}
				acked.Add(1)
			}
		}(w)
	}

	// Fault injection: crash/recover each node in turn under load, with
	// a replication-link partition layered on a different node. One
	// crash at a time so RF=2 ranges always keep one live replica.
	nodeIDs := lc.NodeIDs()
	for cycle := 0; cycle < 4 && !stop.Load(); cycle++ {
		victim := nodeIDs[cycle%len(nodeIDs)]
		partitioned := nodeIDs[(cycle+2)%len(nodeIDs)]

		failoversBefore := lc.RepairStats().Failovers
		lc.PartitionReplica(partitioned)
		lc.CrashNode(victim)
		// Hold the crash until the detector reports the victim down…
		detected := false
		deadline := time.After(20 * time.Second)
	waitDown:
		for !detected && !stop.Load() {
			select {
			case n := <-downCh:
				detected = n == victim
			case <-deadline:
				fail("cycle %d: %s never detected down", cycle, victim)
				break waitDown
			}
		}
		// …then keep it down until the failover lands (the victim may
		// legitimately hold no primaries after earlier cycles, so this
		// wait is bounded, not asserted) plus a short churn window for
		// repairs to start under load.
		for settled := time.Now().Add(2 * time.Second); lc.RepairStats().Failovers == failoversBefore &&
			time.Now().Before(settled) && !stop.Load(); {
			time.Sleep(5 * time.Millisecond)
		}
		time.Sleep(150 * time.Millisecond)
		lc.RecoverNode(victim)
		lc.HealReplica(partitioned)
		// Let the returned node rejoin and RF settle before the next
		// crash, so two faults never overlap.
		settled := time.Now().Add(20 * time.Second)
		for !rfRestored(lc, 2) && time.Now().Before(settled) && !stop.Load() {
			time.Sleep(5 * time.Millisecond)
		}
	}

	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	waitRFRestored(t, lc, 2, 30*time.Second)
	if !lc.Repairs().Quiesce(30 * time.Second) {
		t.Fatal("repair jobs never quiesced")
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Verification: every acknowledged write readable with its last
	// acknowledged content, every acknowledged delete stays dead. Read
	// twice so replica rotation covers both copies — the rebind path
	// guarantees secondaries added mid-churn converge too.
	lost, wrong, resurrected := 0, 0, 0
	for pass := 0; pass < 2; pass++ {
		for id, want := range lastAcked {
			row, found, err := lc.Get("users", Row{"id": id})
			if err != nil {
				t.Fatalf("Get(%s): %v", id, err)
			}
			switch {
			case want.deleted && found:
				resurrected++
			case !want.deleted && !found:
				lost++
			case !want.deleted && found:
				if row["name"] != fmt.Sprintf("w%c-r%d", id[4], want.round) {
					wrong++
					ns := planner.TableNamespace("users")
					m, _ := lc.Router().Map(ns)
					key := []byte(nil)
					{
						tdef, _ := lc.tableDef("users")
						key, _ = pkKey(tdef, Row{"id": id})
					}
					rng := m.Lookup(key)
					t.Logf("corrupt %s: want r%d got %v; replicas=%v", id, want.round, row["name"], rng.Replicas)
					for _, rid := range rng.Replicas {
						v, ver, f2, err := lc.Router().GetFrom(ns, rid, key)
						t.Logf("  %s: found=%v ver=%d err=%v len=%d", rid, f2, ver, err, len(v))
					}
				}
			}
		}
	}
	if lost > 0 || wrong > 0 || resurrected > 0 {
		t.Fatalf("CRASH RECOVERY LOST DATA: lost=%d corrupted=%d resurrected=%d (of %d acked)",
			lost, wrong, resurrected, acked.Load())
	}

	st := lc.RepairStats()
	if st.Failovers == 0 {
		t.Fatalf("hammer never exercised failover: %+v", st)
	}
	if st.RepairsDone == 0 {
		t.Fatalf("hammer never completed an RF repair: %+v", st)
	}
	t.Logf("acked=%d failovers=%d demotions=%d repairs=%d rejoins=%d",
		acked.Load(), st.Failovers, st.Demotions, st.RepairsDone, st.Rejoins)
}

// TestRepairRestoresWritesAfterPrimaryCrash is the deterministic core
// of the self-healing story: crash a range's primary, and a write to
// that range — issued with no manual intervention — succeeds once the
// sweep fails over, with zero acknowledged-write loss.
func TestRepairRestoresWritesAfterPrimaryCrash(t *testing.T) {
	lc := newRepairCluster(t, 3, 2)
	if err := lc.Insert("users", Row{"id": "alice", "name": "Alice", "birthday": 1}); err != nil {
		t.Fatal(err)
	}
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	oldPrimary := m.Ranges()[0].Replicas[0]
	lc.CrashNode(oldPrimary)

	// Drive the loop deterministically: one sweep detects + fails over.
	lc.RepairNow()
	if got := m.Ranges()[0].Replicas[0]; got == oldPrimary {
		t.Fatalf("primary still %s after sweep", got)
	}
	// Writes and primary reads work again immediately.
	if err := lc.Insert("users", Row{"id": "bob", "name": "Bob", "birthday": 2}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	for _, id := range []string{"alice", "bob"} {
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after failover: found=%v err=%v", id, found, err)
		}
	}
	st := lc.RepairStats()
	if st.Failovers == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// RF repair then restores two live replicas without intervention.
	deadline := time.Now().Add(5 * time.Second)
	for !rfRestored(lc, 2) {
		if time.Now().After(deadline) {
			t.Fatalf("RF not restored: %v (stats %+v)", m.Ranges()[0].Replicas, lc.RepairStats())
		}
		lc.RepairNow()
		time.Sleep(5 * time.Millisecond)
	}

	// The crashed node comes back: it rejoins (or is torn down) and the
	// cluster stays at full strength.
	lc.RecoverNode(oldPrimary)
	lc.RepairNow()
	if !lc.Repairs().Quiesce(5 * time.Second) {
		t.Fatal("repair did not quiesce after recovery")
	}
	if !rfRestored(lc, 2) {
		t.Fatalf("RF lost after recovery: %v", m.Ranges()[0].Replicas)
	}
}

// TestGetAllReplicasStale covers replica ordering on the read path
// when the tracker reports every replica over the staleness bound:
// with availability prioritised the read falls through the stale set
// in rotation order (failing over past a crashed stale replica) and
// serves; with read-consistency prioritised it fails with
// ErrStaleReplicas.
func TestGetAllReplicasStale(t *testing.T) {
	run := func(t *testing.T, priority string, crashFirstStale bool) error {
		lc, vc := newSocialCluster(t, 2, 2)
		if err := lc.ApplyConsistency(fmt.Sprintf(
			"namespace users { staleness: 5s; priority: %s; }", priority)); err != nil {
			t.Fatal(err)
		}
		if err := lc.Insert("users", Row{"id": "a", "name": "A", "birthday": 1}); err != nil {
			t.Fatal(err)
		}
		if err := lc.FlushAll(); err != nil {
			t.Fatal(err)
		}
		ns := planner.TableNamespace("users")
		m, _ := lc.Router().Map(ns)
		replicas := m.Ranges()[0].Replicas
		// Park one undelivered update per replica, then age it past the
		// bound: the tracker now reports BOTH replicas stale.
		lc.Pump().Enqueue(ns, recordFor(t, lc, "a"), replicas, time.Hour)
		vc.Advance(10 * time.Second)
		for _, id := range replicas {
			if lc.Pump().Tracker().Staleness(ns, id) <= 5*time.Second {
				t.Fatalf("replica %s not stale", id)
			}
		}
		if crashFirstStale {
			// The stale fallback must fail over within the stale set
			// too: kill one replica, the other still serves.
			lc.CrashNode(replicas[0])
		}
		_, _, err := lc.Get("users", Row{"id": "a"})
		return err
	}

	t.Run("availability first serves stale in order", func(t *testing.T) {
		if err := run(t, "availability > read-consistency", false); err != nil {
			t.Fatalf("stale read not served: %v", err)
		}
	})
	t.Run("availability first fails over within the stale set", func(t *testing.T) {
		if err := run(t, "availability > read-consistency", true); err != nil {
			t.Fatalf("stale failover read not served: %v", err)
		}
	})
	t.Run("read-consistency first fails", func(t *testing.T) {
		if err := run(t, "read-consistency > availability", false); !errors.Is(err, ErrStaleReplicas) {
			t.Fatalf("err = %v, want ErrStaleReplicas", err)
		}
	})
}

// recordFor builds a pre-versioned record for the users row with the
// given id (tracker staleness bookkeeping needs a real enqueue).
func recordFor(t *testing.T, lc *LocalCluster, id string) record.Record {
	t.Helper()
	tdef, err := lc.tableDef("users")
	if err != nil {
		t.Fatal(err)
	}
	key, err := pkKey(tdef, Row{"id": id})
	if err != nil {
		t.Fatal(err)
	}
	return record.Record{Key: key, Value: []byte("x"), Version: 1}
}
