package scads

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/consistency"
	"scads/internal/planner"
)

var t0 = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)

// socialDDL is the paper's §3.2 running example.
const socialDDL = `
ENTITY users (
    id string PRIMARY KEY,
    name string,
    birthday int
)
ENTITY friendships (
    f1 string,
    f2 string,
    PRIMARY KEY (f1, f2),
    CARDINALITY f1 5000,
    CARDINALITY f2 5000
)
QUERY findUser
SELECT * FROM users WHERE id = ?user LIMIT 1

QUERY friends
SELECT * FROM friendships WHERE f1 = ?user LIMIT 5000

QUERY friendsWithUpcomingBirthdays
SELECT p.* FROM friendships f JOIN users p ON f.f2 = p.id
WHERE f.f1 = ?user ORDER BY p.birthday LIMIT 50
`

func newSocialCluster(t testing.TB, nodes, rf int) (*LocalCluster, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(nodes, Config{
		Clock:             vc,
		ReplicationFactor: rf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	return lc, vc
}

func seedUsers(t testing.TB, c *Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := c.Insert("users", Row{
			"id":       fmt.Sprintf("user%04d", i),
			"name":     fmt.Sprintf("User %d", i),
			"birthday": i%365 + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertGetDelete(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 2)
	if err := lc.Insert("users", Row{"id": "alice", "name": "Alice", "birthday": 42}); err != nil {
		t.Fatal(err)
	}
	// Reads rotate across replicas and are eventually consistent;
	// drain replication so both replicas hold the write (sessions give
	// read-your-writes without draining — see TestReadYourWritesSession).
	lc.FlushAll()
	r, found, err := lc.Get("users", Row{"id": "alice"})
	if err != nil || !found {
		t.Fatalf("Get = %v %v", found, err)
	}
	if r["name"] != "Alice" || r["birthday"] != int64(42) {
		t.Fatalf("row = %v", r)
	}
	if err := lc.Delete("users", Row{"id": "alice"}); err != nil {
		t.Fatal(err)
	}
	lc.FlushAll()
	if _, found, _ := lc.Get("users", Row{"id": "alice"}); found {
		t.Fatal("deleted row still visible")
	}
}

func TestWriteValidation(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	cases := []struct {
		name string
		row  Row
	}{
		{"missing pk", Row{"name": "x"}},
		{"unknown column", Row{"id": "a", "nope": 1}},
		{"wrong type", Row{"id": "a", "birthday": "tomorrow"}},
	}
	for _, c := range cases {
		if err := lc.Insert("users", c.row); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := lc.Insert("ghosts", Row{"id": "a"}); !errors.Is(err, ErrUnknownTable) {
		t.Errorf("unknown table: %v", err)
	}
}

func TestSchemaRejectionIsUpfront(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(1, Config{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	// The Twitter shape must be rejected at definition time.
	err = lc.DefineSchema(`
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows ( follower string, followee string, PRIMARY KEY (follower, followee) )
QUERY followersOf
SELECT u.* FROM follows f JOIN users u ON f.follower = u.id
WHERE f.followee = ?user LIMIT 100
`)
	if err == nil || !strings.Contains(err.Error(), "CARDINALITY") {
		t.Fatalf("Twitter schema accepted: %v", err)
	}
}

func TestPKLookupQuery(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 1)
	seedUsers(t, lc.Cluster, 20)
	rows, err := lc.Query("findUser", map[string]any{"user": "user0007"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["name"] != "User 7" {
		t.Fatalf("rows = %v", rows)
	}
	// Missing user: empty result.
	rows, err = lc.Query("findUser", map[string]any{"user": "ghost"})
	if err != nil || len(rows) != 0 {
		t.Fatalf("ghost = %v %v", rows, err)
	}
	// Missing parameter: error.
	if _, err := lc.Query("findUser", nil); err == nil {
		t.Fatal("missing param accepted")
	}
	// Unknown query: error.
	if _, err := lc.Query("nope", nil); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("unknown query: %v", err)
	}
}

func TestTableScanQuery(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 1)
	for i := 0; i < 10; i++ {
		err := lc.Insert("friendships", Row{"f1": "alice", "f2": fmt.Sprintf("friend%02d", i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	lc.Insert("friendships", Row{"f1": "bob", "f2": "carol"})
	rows, err := lc.Query("friends", map[string]any{"user": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("friends = %d rows", len(rows))
	}
	for i, r := range rows {
		if r["f1"] != "alice" {
			t.Fatalf("row %d = %v", i, r)
		}
	}
}

func TestJoinViewQueryEndToEnd(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 1)
	// Bob and Carol are Alice's friends with birthdays 200 and 100.
	lc.Insert("users", Row{"id": "alice", "name": "Alice", "birthday": 10})
	lc.Insert("users", Row{"id": "bob", "name": "Bob", "birthday": 200})
	lc.Insert("users", Row{"id": "carol", "name": "Carol", "birthday": 100})
	lc.Insert("friendships", Row{"f1": "alice", "f2": "bob"})
	lc.Insert("friendships", Row{"f1": "alice", "f2": "carol"})
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}

	rows, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Ordered by birthday: Carol (100) before Bob (200).
	if rows[0]["name"] != "Carol" || rows[1]["name"] != "Bob" {
		t.Fatalf("order = %v", rows)
	}
	// Values are the users' columns only (p.* projection).
	if _, ok := rows[0]["f1"]; ok {
		t.Fatal("driving columns leaked")
	}

	// Birthday edit moves Bob ahead of Carol.
	lc.Insert("users", Row{"id": "bob", "name": "Bob", "birthday": 50})
	lc.FlushAll()
	rows, _ = lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	if rows[0]["name"] != "Bob" {
		t.Fatalf("after birthday edit: %v", rows)
	}

	// Unfriending removes Carol from the view.
	lc.Delete("friendships", Row{"f1": "alice", "f2": "carol"})
	lc.FlushAll()
	rows, _ = lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	if len(rows) != 1 || rows[0]["name"] != "Bob" {
		t.Fatalf("after unfriend: %v", rows)
	}
}

func TestMaintenanceIsAsynchronous(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	lc.Insert("users", Row{"id": "bob", "name": "Bob", "birthday": 5})
	lc.Insert("friendships", Row{"f1": "alice", "f2": "bob"})

	// Before draining, the view may be empty (updates are async).
	pending, _ := lc.MaintenanceBacklog(time.Hour)
	if pending == 0 {
		t.Fatal("no pending maintenance after writes")
	}
	lc.FlushAll()
	pending, _ = lc.MaintenanceBacklog(time.Hour)
	if pending != 0 {
		t.Fatalf("backlog after flush = %d", pending)
	}
	rows, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("view rows = %v %v", rows, err)
	}
}

func TestReplicationPropagatesAsync(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 2)
	lc.Insert("users", Row{"id": "alice", "name": "Alice", "birthday": 1})

	// The write is on the primary; the secondary catches up on drain.
	st := lc.Stats()
	if st.Replication.Enqueued == 0 {
		t.Fatal("no replication enqueued with RF=2")
	}
	lc.FlushAll()
	st = lc.Stats()
	if st.Replication.Pending != 0 || st.Replication.Delivered == 0 {
		t.Fatalf("replication stats = %+v", st.Replication)
	}

	// Both replicas can now serve the read (kill one node at a time).
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	replicas := m.Ranges()[0].Replicas
	if len(replicas) != 2 {
		t.Fatalf("replicas = %v", replicas)
	}
	for _, down := range replicas {
		lc.CrashNode(down)
		r, found, err := lc.Get("users", Row{"id": "alice"})
		if err != nil || !found || r["name"] != "Alice" {
			t.Fatalf("read with %s down: %v %v %v", down, r, found, err)
		}
		lc.RecoverNode(down)
	}
}

func TestSerializableCounter(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	if err := lc.ApplyConsistency(`
namespace users {
  write: serializable;
}
`); err != nil {
		t.Fatal(err)
	}
	// Concurrent read-modify-writes must not lose updates.
	const workers, iters = 8, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var err error
			for i := 0; i < iters; i++ {
				err = lc.UpdateFunc("users", Row{"id": "counter"}, func(cur Row) (Row, error) {
					n := int64(0)
					if cur != nil {
						n = cur["birthday"].(int64)
					}
					return Row{"id": "counter", "birthday": n + 1}, nil
				})
				if err != nil {
					break
				}
			}
			errs <- err
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	r, found, err := lc.Get("users", Row{"id": "counter"})
	if err != nil || !found {
		t.Fatal(err)
	}
	if r["birthday"] != int64(workers*iters) {
		t.Fatalf("counter = %v, want %d (lost updates)", r["birthday"], workers*iters)
	}
}

func TestMergeWriteMode(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	if err := lc.ApplyConsistency(`
namespace users {
  write: merge(union);
}
`); err != nil {
		t.Fatal(err)
	}
	// Two writers add different values to the same "name" field;
	// union-merge keeps both.
	lc.Insert("users", Row{"id": "wall", "name": "post-a", "birthday": 1})
	lc.Insert("users", Row{"id": "wall", "name": "post-b", "birthday": 1})
	r, _, err := lc.Get("users", Row{"id": "wall"})
	if err != nil {
		t.Fatal(err)
	}
	if r["name"] != "post-a\npost-b" {
		t.Fatalf("merged = %q", r["name"])
	}
}

func TestMergeFunctionMustBeRegistered(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	err := lc.ApplyConsistency(`namespace users { write: merge(bespoke); }`)
	if err == nil {
		t.Fatal("unregistered merge accepted")
	}
	lc.RegisterMerge("bespoke", func(a, b []byte) []byte { return a })
	if err := lc.ApplyConsistency(`namespace users { write: merge(bespoke); }`); err != nil {
		t.Fatal(err)
	}
}

func TestConsistencySpecValidation(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	if err := lc.ApplyConsistency(`namespace ghosts { staleness: 5s; }`); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("spec for unknown table: %v", err)
	}
	vc := clock.NewVirtual(t0)
	bare, _ := NewLocalCluster(1, Config{Clock: vc})
	defer bare.Close()
	if err := bare.ApplyConsistency(`namespace users { staleness: 5s; }`); !errors.Is(err, ErrNoSchema) {
		t.Fatalf("spec before schema: %v", err)
	}
}

func TestReadYourWritesSession(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 2)
	if err := lc.ApplyConsistency(`
namespace users {
  session: read-your-writes;
  staleness: 10m;
}
`); err != nil {
		t.Fatal(err)
	}
	sess := lc.NewSession("users")
	if sess.Level() != consistency.ReadYourWrites {
		t.Fatalf("session level = %v", sess.Level())
	}

	// Write lands on the primary only (replication pending).
	if err := lc.InsertSession("users", Row{"id": "me", "name": "Me", "birthday": 1}, sess); err != nil {
		t.Fatal(err)
	}
	// Many session reads: every one must see the write even though
	// the secondary replica hasn't received it yet.
	for i := 0; i < 10; i++ {
		r, found, err := lc.GetSession("users", Row{"id": "me"}, sess)
		if err != nil || !found || r["name"] != "Me" {
			t.Fatalf("read %d missed own write: %v %v %v", i, r, found, err)
		}
	}
	// A sessionless read round-robins and can miss (not asserted —
	// demonstrating the difference is the E4d experiment's job).
}

func TestSessionDeleteVisibility(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 2)
	lc.ApplyConsistency(`namespace users { session: read-your-writes; }`)
	sess := lc.NewSession("users")
	lc.InsertSession("users", Row{"id": "x", "name": "X", "birthday": 1}, sess)
	lc.FlushAll()
	if err := lc.DeleteSession("users", Row{"id": "x"}, sess); err != nil {
		t.Fatal(err)
	}
	// Session must observe its own delete (miss), not resurrect.
	_, found, err := lc.GetSession("users", Row{"id": "x"}, sess)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("session saw pre-delete value")
	}
}

func TestStalenessBoundArbitration(t *testing.T) {
	// The §3.3.1 contention example: the primary is down and the only
	// surviving replica exceeds the staleness bound. The declared
	// priority order decides whether the read fails or serves stale.
	run := func(t *testing.T, priority string) error {
		vc := clock.NewVirtual(t0)
		lc, err := NewLocalCluster(2, Config{Clock: vc, ReplicationFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer lc.Close()
		if err := lc.DefineSchema(socialDDL); err != nil {
			t.Fatal(err)
		}
		if err := lc.ApplyConsistency(fmt.Sprintf(`
namespace users {
  staleness: 5s;
  priority: %s;
}
`, priority)); err != nil {
			t.Fatal(err)
		}
		lc.Insert("users", Row{"id": "a", "name": "A", "birthday": 1})
		// Don't drain replication; advance past the staleness bound so
		// the secondary is provably stale.
		vc.Advance(10 * time.Second)
		m, _ := lc.Router().Map(planner.TableNamespace("users"))
		lc.CrashNode(m.Ranges()[0].Replicas[0])
		_, _, err = lc.Get("users", Row{"id": "a"})
		return err
	}

	t.Run("read-consistency first fails the read", func(t *testing.T) {
		if err := run(t, "read-consistency > availability"); !errors.Is(err, ErrStaleReplicas) {
			t.Fatalf("err = %v, want ErrStaleReplicas", err)
		}
	})
	t.Run("availability first serves stale", func(t *testing.T) {
		if err := run(t, "availability > read-consistency"); err != nil {
			t.Fatalf("err = %v, want stale read served", err)
		}
	})
}

func TestMaintenanceTableExposed(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	tbl := lc.FormatMaintenanceTable()
	for _, want := range []string{"view_friendsWithUpcomingBirthdays", "friendships", "birthday"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("maintenance table missing %q:\n%s", want, tbl)
		}
	}
	if lc.Plan("friends") == nil || lc.Analysis("friends") == nil {
		t.Fatal("plan/analysis accessors empty")
	}
}

func TestSplitTableAndCrossPartitionQuery(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 1)
	if err := lc.SplitTable("users", "user0005", "user0010"); err != nil {
		t.Fatal(err)
	}
	// Spread the three ranges across the three nodes.
	ids := lc.NodeIDs()
	if err := lc.AssignRange("users", "user0000", []string{ids[0]}); err != nil {
		t.Fatal(err)
	}
	lc.AssignRange("users", "user0007", []string{ids[1]})
	lc.AssignRange("users", "user0012", []string{ids[2]})

	seedUsers(t, lc.Cluster, 15)
	for i := 0; i < 15; i++ {
		id := fmt.Sprintf("user%04d", i)
		r, found, err := lc.Get("users", Row{"id": id})
		if err != nil || !found || r["id"] != id {
			t.Fatalf("Get(%s) = %v %v %v", id, r, found, err)
		}
	}
}

func TestMoveRangeMigratesData(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	seedUsers(t, lc.Cluster, 30)
	lc.FlushAll()

	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	oldPrimary := m.Ranges()[0].Replicas[0]
	var target string
	for _, id := range lc.NodeIDs() {
		if id != oldPrimary {
			target = id
		}
	}
	if err := lc.MoveRange(ns, []byte{0x01}, []string{target}); err != nil {
		t.Fatal(err)
	}
	// All data readable from the new owner; old owner no longer serves.
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after move: %v %v", id, found, err)
		}
	}
	if got := m.Ranges()[0].Replicas[0]; got != target {
		t.Fatalf("map primary = %s, want %s", got, target)
	}
	// The old node dropped the range.
	node, _ := lc.Node(oldPrimary)
	nsEngine, err := node.Engine().Namespace(ns)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := nsEngine.Get([]byte{0x01}); ok {
		t.Fatalf("old primary still serves %q", v)
	}
}

func TestSLAMonitorCountsOperations(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	seedUsers(t, lc.Cluster, 5)
	for i := 0; i < 5; i++ {
		lc.Get("users", Row{"id": "user0001"})
	}
	s := lc.Stats()
	if s.SLA.TotalRequests < 10 {
		t.Fatalf("SLA requests = %d", s.SLA.TotalRequests)
	}
}

func TestClusterRequiresTransportAndDirectory(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty config succeeded")
	}
	if _, err := NewLocalCluster(0, Config{}); err == nil {
		t.Fatal("zero-node local cluster accepted")
	}
}

func TestDefineSchemaRequiresNodes(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(1, Config{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	lc.CrashNode(lc.NodeIDs()[0])
	if err := lc.DefineSchema(socialDDL); err == nil {
		t.Fatal("schema defined with no serving nodes")
	}
}

func TestQueriesBeforeSchema(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, _ := NewLocalCluster(1, Config{Clock: vc})
	defer lc.Close()
	if _, err := lc.Query("findUser", nil); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("query before schema: %v", err)
	}
	if _, err := lc.DrainMaintenance(10); err != nil {
		t.Fatalf("drain before schema: %v", err)
	}
	if err := lc.Insert("users", Row{"id": "x"}); !errors.Is(err, ErrNoSchema) {
		t.Fatalf("insert before schema: %v", err)
	}
}

func TestDescOrderedQueryEndToEnd(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(`
ENTITY messages (
    channel string,
    ts int,
    author string,
    PRIMARY KEY (channel, ts),
    CARDINALITY channel 10000
)
QUERY recent
SELECT * FROM messages WHERE channel = ?ch AND ts > ?since ORDER BY ts DESC LIMIT 5
`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		err := lc.Insert("messages", Row{"channel": "general", "ts": i, "author": fmt.Sprintf("a%d", i)})
		if err != nil {
			t.Fatal(err)
		}
	}
	lc.Insert("messages", Row{"channel": "other", "ts": 99, "author": "x"})
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}

	rows, err := lc.Query("recent", map[string]any{"ch": "general", "since": 10})
	if err != nil {
		t.Fatal(err)
	}
	// Strictly greater than 10, newest first, limit 5: 20..16.
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, want := range []int64{20, 19, 18, 17, 16} {
		if rows[i]["ts"] != want {
			t.Fatalf("row %d ts = %v, want %d (got order %v)", i, rows[i]["ts"], want, rows)
		}
	}
	// Channel isolation.
	for _, r := range rows {
		if r["channel"] != "general" {
			t.Fatalf("leaked row from other channel: %v", r)
		}
	}
}

func TestMonotonicReadsAcrossReplicas(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 2)
	if err := lc.ApplyConsistency(`namespace users { session: monotonic-reads; }`); err != nil {
		t.Fatal(err)
	}
	// Version 1 reaches both replicas; version 2 only the primary.
	lc.Insert("users", Row{"id": "k", "name": "v1", "birthday": 1})
	lc.FlushAll()
	lc.Insert("users", Row{"id": "k", "name": "v2", "birthday": 2})

	sess := lc.NewSession("users")
	sawV2 := false
	for i := 0; i < 40; i++ {
		r, found, err := lc.GetSession("users", Row{"id": "k"}, sess)
		if err != nil || !found {
			t.Fatalf("read %d: %v %v", i, found, err)
		}
		name := r["name"].(string)
		if sawV2 && name != "v2" {
			t.Fatalf("monotonic reads violated: saw v2 then %q", name)
		}
		if name == "v2" {
			sawV2 = true
		}
	}
	if !sawV2 {
		t.Fatal("rotation never reached the primary (test setup issue)")
	}
}

func TestUpdateFuncDeleteAndAbsent(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	// fn on an absent row sees nil.
	called := false
	err := lc.UpdateFunc("users", Row{"id": "x"}, func(cur Row) (Row, error) {
		called = true
		if cur != nil {
			t.Fatalf("cur = %v, want nil", cur)
		}
		return Row{"id": "x", "name": "new", "birthday": 1}, nil
	})
	if err != nil || !called {
		t.Fatal(err)
	}
	lc.FlushAll()
	// fn returning nil deletes.
	if err := lc.UpdateFunc("users", Row{"id": "x"}, func(cur Row) (Row, error) {
		if cur == nil {
			t.Fatal("row missing in RMW")
		}
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	lc.FlushAll()
	if _, found, _ := lc.Get("users", Row{"id": "x"}); found {
		t.Fatal("UpdateFunc(nil) did not delete")
	}
	// fn returning an error aborts without writing.
	wantErr := fmt.Errorf("abort")
	if err := lc.UpdateFunc("users", Row{"id": "y"}, func(cur Row) (Row, error) {
		return nil, wantErr
	}); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// Delete of an absent row is a no-op, not an error.
	if err := lc.Delete("users", Row{"id": "ghost"}); err != nil {
		t.Fatal(err)
	}
}

func TestStartBackgroundDrainsWithoutManualFlush(t *testing.T) {
	// Real clock: background workers drain replication + maintenance
	// on their own.
	lc, err := NewLocalCluster(2, Config{ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	lc.StartBackground(2)
	lc.StartBackground(2) // idempotent

	lc.Insert("users", Row{"id": "bob", "name": "Bob", "birthday": 5})
	lc.Insert("friendships", Row{"f1": "alice", "f2": "bob"})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rows, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
		if err != nil {
			t.Fatal(err)
		}
		st := lc.Stats()
		if len(rows) == 1 && st.Maintenance == 0 && st.Replication.Pending == 0 {
			lc.StopBackground()
			lc.StopBackground() // idempotent
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background workers never drained the queues")
}

func TestRowMergeFunction(t *testing.T) {
	// Row-level merges (§3.3.1: "a function that will merge
	// conflicting writes") see both whole rows; here the smaller
	// birthday and the longer name win regardless of write order.
	lc, _ := newSocialCluster(t, 1, 1)
	lc.RegisterRowMerge("rowwise", func(cur, incoming Row) Row {
		merged := incoming.Clone()
		if ob, ok := cur["birthday"].(int64); ok {
			if nb, ok := merged["birthday"].(int64); !ok || ob < nb {
				merged["birthday"] = ob
			}
		}
		if on, ok := cur["name"].(string); ok {
			if nn, ok := merged["name"].(string); !ok || len(on) > len(nn) {
				merged["name"] = on
			}
		}
		return merged
	})
	if err := lc.ApplyConsistency(`namespace users { write: merge(rowwise); }`); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("users", Row{"id": "m", "name": "Alexandra", "birthday": 100}); err != nil {
		t.Fatal(err)
	}
	if err := lc.Insert("users", Row{"id": "m", "name": "Alex", "birthday": 42}); err != nil {
		t.Fatal(err)
	}
	r, _, err := lc.Get("users", Row{"id": "m"})
	if err != nil {
		t.Fatal(err)
	}
	if r["name"] != "Alexandra" || r["birthday"] != int64(42) {
		t.Fatalf("merged row = %v, want longest name + smallest birthday", r)
	}
}

func TestRowMergeNilKeepsIncoming(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	lc.RegisterRowMerge("veto", func(cur, incoming Row) Row { return nil })
	if err := lc.ApplyConsistency(`namespace users { write: merge(veto); }`); err != nil {
		t.Fatal(err)
	}
	lc.Insert("users", Row{"id": "n", "name": "old", "birthday": 1})
	lc.Insert("users", Row{"id": "n", "name": "new", "birthday": 2})
	r, _, err := lc.Get("users", Row{"id": "n"})
	if err != nil {
		t.Fatal(err)
	}
	if r["name"] != "new" {
		t.Fatalf("nil merge result should keep incoming row, got %v", r)
	}
}

func TestRowMergeSatisfiesSpecValidation(t *testing.T) {
	// A spec naming a row-level merge validates without a byte-level
	// registration of the same name.
	lc, _ := newSocialCluster(t, 1, 1)
	lc.RegisterRowMerge("rowonly", func(cur, incoming Row) Row { return incoming })
	if err := lc.ApplyConsistency(`namespace users { write: merge(rowonly); }`); err != nil {
		t.Fatalf("row-only merge rejected: %v", err)
	}
}

func TestRowMergeTakesPrecedenceOverByteMerge(t *testing.T) {
	lc, _ := newSocialCluster(t, 1, 1)
	lc.RegisterMerge("both", func(a, b []byte) []byte { return []byte("byte-level") })
	lc.RegisterRowMerge("both", func(cur, incoming Row) Row {
		merged := incoming.Clone()
		merged["name"] = "row-level"
		return merged
	})
	if err := lc.ApplyConsistency(`namespace users { write: merge(both); }`); err != nil {
		t.Fatal(err)
	}
	lc.Insert("users", Row{"id": "p", "name": "a", "birthday": 1})
	lc.Insert("users", Row{"id": "p", "name": "b", "birthday": 1})
	r, _, err := lc.Get("users", Row{"id": "p"})
	if err != nil {
		t.Fatal(err)
	}
	if r["name"] != "row-level" {
		t.Fatalf("name = %v, want row-level merge to win", r["name"])
	}
}
