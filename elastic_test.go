package scads

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scads/internal/clock"
	"scads/internal/director"
	"scads/internal/migration"
	"scads/internal/repair"
)

func TestElasticActuatorGrowsAndShrinksRealCluster(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc, ReplicationFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	seedUsers(t, lc.Cluster, 60)
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Split so there is something to spread.
	if err := lc.SplitTable("users", "user0020", "user0040"); err != nil {
		t.Fatal(err)
	}

	act := NewElasticActuator(lc)
	act.OnError = func(err error) { t.Fatalf("actuator: %v", err) }
	d := director.New(vc, act, director.Config{
		SLALatency:        100 * time.Millisecond,
		Policy:            director.Reactive,
		MinServers:        2,
		ScaleDownCooldown: time.Minute,
	})

	if act.Running() != 2 {
		t.Fatalf("running = %d", act.Running())
	}

	// Violation: the reactive policy must add a real node. Request is
	// asynchronous; Wait blocks until the boot and the spread settle.
	d.Step(director.Observation{Rate: 5000, Latency: time.Second, SuccessRate: 90, SLAMet: false})
	act.Wait()
	if act.Running() != 3 {
		t.Fatalf("running after violation = %d", act.Running())
	}
	if act.Booting() != 0 {
		t.Fatalf("booting after settle = %d", act.Booting())
	}
	// The new node actually carries ranges after the spread.
	usedNodes := map[string]bool{}
	for _, ns := range lc.Router().Namespaces() {
		m, _ := lc.Router().Map(ns)
		for id := range m.NodesInUse() {
			usedNodes[id] = true
		}
	}
	if len(usedNodes) != 3 {
		t.Fatalf("only %d nodes carry data after grow: %v", len(usedNodes), usedNodes)
	}
	// All data still readable after the migration.
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after grow: found=%v err=%v", id, found, err)
		}
	}

	// Deep underload: the director eventually shrinks back, draining
	// the released node's data to survivors first.
	vc.Advance(2 * time.Minute)
	d.Step(director.Observation{Rate: 1, Latency: time.Millisecond, SuccessRate: 100, SLAMet: true})
	if act.Running() != 2 {
		t.Fatalf("running after shrink = %d", act.Running())
	}
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after shrink: found=%v err=%v", id, found, err)
		}
	}
	// Writes still work after both transitions.
	if err := lc.Insert("users", Row{"id": "after", "name": "A", "birthday": 9}); err != nil {
		t.Fatal(err)
	}
}

// TestBootingPreventsDoubleProvision pins the Actuator contract the
// director sizes against: while a Request is in flight its instances
// count as booting, so a control step during the boot window must not
// request capacity again (the repair-storm double-provision bug —
// Booting used to be hardcoded to 0).
func TestBootingPreventsDoubleProvision(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}

	act := NewElasticActuator(lc)
	act.OnError = func(err error) { t.Errorf("actuator: %v", err) }
	// Hold the requested nodes in the booting state until released.
	hold := make(chan struct{})
	booting := make(chan int, 1)
	act.testHookBooting = func() {
		booting <- act.Booting()
		<-hold
	}
	d := director.New(vc, act, director.Config{
		SLALatency: 100 * time.Millisecond,
		Policy:     director.Reactive,
		MinServers: 2,
	})

	violation := director.Observation{Rate: 5000, Latency: time.Second, SuccessRate: 90, SLAMet: false}
	dec := d.Step(violation)
	if dec.Added != 1 {
		t.Fatalf("first step added %d, want 1", dec.Added)
	}
	if got := <-booting; got != 1 {
		t.Fatalf("Booting during request = %d, want 1", got)
	}

	// A second violation step while the first request is still booting:
	// running(2) + booting(1) covers the target(3), so the director
	// must not double-provision.
	dec = d.Step(violation)
	if dec.Added != 0 {
		t.Fatalf("second step double-provisioned: added %d, booting %d", dec.Added, dec.Booting)
	}
	if dec.Booting != 1 {
		t.Fatalf("director observed booting = %d, want 1", dec.Booting)
	}

	close(hold)
	act.Wait()
	if act.Running() != 3 || act.Booting() != 0 {
		t.Fatalf("after settle: running=%d booting=%d, want 3/0", act.Running(), act.Booting())
	}
}

// TestReleaseBlockedWhileRepairInFlight pins the decommission/repair
// interlock: a scale-down may not tear a node out while a repair job
// is still re-replicating a range onto (or off) it — the repair's flip
// would land on an unregistered node and strand the range. The repair
// migration is held at its snapshot phase on a channel, so the
// ordering is forced, not timed.
func TestReleaseBlockedWhileRepairInFlight(t *testing.T) {
	lc, err := NewLocalCluster(3, Config{
		ReplicationFactor: 2,
		Repair: repair.Config{
			SweepInterval:    time.Hour, // manual sweeps only
			HeartbeatTimeout: 250 * time.Millisecond,
			ReplaceAfter:     50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	seedUsers(t, lc.Cluster, 60)
	if err := lc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := lc.SplitTable("users", "user0020", "user0040"); err != nil {
		t.Fatal(err)
	}
	if err := lc.SpreadAll(); err != nil {
		t.Fatal(err)
	}

	// Hold the first migration that enters its snapshot phase after
	// arming — that will be the repair's re-replication.
	var armed atomic.Bool
	gate := make(chan struct{})
	blocked := make(chan struct{}, 1)
	lc.Migrations().OnPhase = func(ev migration.Event) {
		if ev.Phase == migration.PhaseSnapshot && armed.CompareAndSwap(true, false) {
			blocked <- struct{}{}
			<-gate
		}
	}

	// Crash a middle node: every degraded range repairs onto the only
	// spare — node-003, exactly the node Release will pick as victim.
	lc.CrashNode("node-002")
	armed.Store(true)
	// Sweep until the replacement grace elapses and a re-replication
	// job reaches its (held) snapshot phase; the deadline only bounds
	// test failure, the ordering comes from the channel.
	deadline := time.Now().Add(10 * time.Second)
	for held := false; !held; {
		lc.RepairNow()
		select {
		case <-blocked:
			held = true
		case <-time.After(5 * time.Millisecond):
			if time.Now().After(deadline) {
				t.Fatalf("repair never scheduled: %+v", lc.RepairStats())
			}
		}
	}

	act := NewElasticActuator(lc)
	act.OnError = func(err error) { t.Errorf("actuator: %v", err) }
	waiting := make(chan string, 1)
	act.testHookReleaseWaiting = func(victim string) { waiting <- victim }

	released := make(chan struct{})
	go func() {
		defer close(released)
		act.Release(1)
	}()

	// Release observed the in-flight repair and is waiting — only then
	// let the repair finish.
	if victim := <-waiting; victim != "node-003" {
		t.Errorf("release waited on %q, want node-003", victim)
	}
	select {
	case <-released:
		t.Fatal("Release completed while the repair was still in flight")
	default:
	}
	close(gate)
	<-released

	// The repair completed before the decommission: nothing failed, and
	// every range is routed to live, registered nodes only.
	if !lc.Repairs().Quiesce(10 * time.Second) {
		t.Fatal("repairs never drained")
	}
	if st := lc.RepairStats(); st.RepairsFailed != 0 {
		t.Fatalf("repairs failed during scale-down: %+v", st)
	}
	if _, ok := lc.Node("node-003"); !ok {
		t.Fatal("victim node handle missing")
	}
	for _, ns := range lc.Router().Namespaces() {
		m, _ := lc.Router().Map(ns)
		for _, rng := range m.Ranges() {
			for _, id := range rng.Replicas {
				if id == "node-003" {
					t.Fatalf("range %q still routed to decommissioned node: %v", rng.Start, rng.Replicas)
				}
			}
		}
	}
	// Acked data survives the interleaving.
	for i := 0; i < 60; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after repair+decommission: found=%v err=%v", id, found, err)
		}
	}
}

func TestElasticActuatorNeverBelowOneNode(t *testing.T) {
	vc := clock.NewVirtual(t0)
	lc, err := NewLocalCluster(2, Config{Clock: vc})
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if err := lc.DefineSchema(socialDDL); err != nil {
		t.Fatal(err)
	}
	act := NewElasticActuator(lc)
	act.Release(10)
	if act.Running() != 1 {
		t.Fatalf("running = %d, want floor of 1", act.Running())
	}
}

func TestObserveCarriesContentionDelta(t *testing.T) {
	lc, _ := partitionedCluster(t, "read-consistency > availability")
	for i := 0; i < 3; i++ {
		lc.Get("users", Row{"id": "a"})
	}
	obs := lc.Observe(time.Second)
	if obs.Contentions != 3 {
		t.Fatalf("Contentions = %d, want 3", obs.Contentions)
	}
	// The delta was consumed: a second observation reports only new
	// contentions.
	if obs2 := lc.Observe(time.Second); obs2.Contentions != 0 {
		t.Fatalf("second Observe Contentions = %d, want 0", obs2.Contentions)
	}
	lc.Get("users", Row{"id": "a"})
	if obs3 := lc.Observe(time.Second); obs3.Contentions != 1 {
		t.Fatalf("third Observe Contentions = %d, want 1", obs3.Contentions)
	}
}

func TestObserveFeedsDirector(t *testing.T) {
	lc, _ := partitionedCluster(t, "read-consistency > availability")
	lc.Get("users", Row{"id": "a"})

	act := NewElasticActuator(lc)
	d := director.New(lc.Clock(), act, director.Config{
		SLALatency: 100 * time.Millisecond,
		Policy:     director.Reactive,
	})
	dec := d.Step(lc.Observe(time.Second))
	if !strings.Contains(dec.Reason, "contention(1)") {
		t.Fatalf("Reason = %q, want the contention noted", dec.Reason)
	}
	if d.ContentionsNoted() != 1 {
		t.Fatalf("ContentionsNoted = %d", d.ContentionsNoted())
	}
}

func TestObserveReportsSLAInterval(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	seedUsers(t, lc.Cluster, 10)
	for i := 0; i < 20; i++ {
		lc.Get("users", Row{"id": "user0001"})
	}
	obs := lc.Observe(time.Second)
	if obs.SuccessRate != 100 {
		t.Fatalf("SuccessRate = %v", obs.SuccessRate)
	}
	if !obs.SLAMet {
		t.Fatal("healthy cluster should meet the SLA")
	}
}

func TestObserveReplicationAtRisk(t *testing.T) {
	// Updates parked behind a severed link count as at risk once their
	// deadline is close.
	lc, vc := partitionedCluster(t, "availability > read-consistency")
	_ = vc
	obs := lc.Observe(time.Hour) // generous margin: everything pending is at risk
	if obs.ReplicationAtRisk == 0 {
		t.Fatal("parked updates should be at risk")
	}
}
