package scads

import (
	"strings"
	"testing"
	"time"

	"scads/internal/analyzer"
)

func adviceWorkload() AdviceWorkload {
	return AdviceWorkload{
		QueryRates: map[string]float64{
			"findUser": 500, "friends": 300, "friendsWithUpcomingBirthdays": 200,
		},
		UpdateRates: map[string]float64{"users": 20, "friendships": 10},
		TableRows:   map[string]int{"users": 100_000, "friendships": 2_000_000},
	}
}

func adviceConfig() AdviceConfig {
	return AdviceConfig{
		Capacity: AnalyticCapacity{
			PerServer: 400, Base: 2 * time.Millisecond, K: 40 * time.Millisecond,
		},
	}
}

func TestClusterAdvise(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 2)
	rep, err := lc.Advise(adviceWorkload(), adviceConfig())
	if err != nil {
		t.Fatalf("Advise: %v", err)
	}
	if len(rep.Queries) != 3 {
		t.Fatalf("want 3 query advices, got %d", len(rep.Queries))
	}
	for _, q := range rep.Queries {
		if !q.Accepted {
			t.Errorf("%s rejected: %s", q.Query, q.Reason)
		}
	}
	// Advise inherits the cluster's replication factor when the config
	// does not override it.
	if rep.Cluster.ReplicationFactor != 2 {
		t.Errorf("ReplicationFactor = %d, want cluster's 2", rep.Cluster.ReplicationFactor)
	}
	if len(rep.Curve) == 0 {
		t.Fatal("no downtime/cost curve")
	}
}

func TestClusterAdviseNoSchema(t *testing.T) {
	vcfg := Config{}
	lc, err := NewLocalCluster(1, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	if _, err := lc.Advise(adviceWorkload(), adviceConfig()); err != ErrNoSchema {
		t.Fatalf("err = %v, want ErrNoSchema", err)
	}
}

func TestAdviseDDLMixedAcceptance(t *testing.T) {
	// One bounded query and one Twitter-shaped rejection in the same
	// program: AdviseDDL reports both instead of failing.
	ddl := `
ENTITY users ( id string PRIMARY KEY, name string )
ENTITY follows (
    follower string,
    followee string,
    PRIMARY KEY (follower, followee),
    CARDINALITY follower 5000
)
QUERY getUser
SELECT * FROM users WHERE id = ?u LIMIT 1

QUERY followersOf
SELECT u.* FROM follows f JOIN users u ON f.follower = u.id
WHERE f.followee = ?u LIMIT 100
`
	rep, err := AdviseDDL(ddl, analyzer.Config{}, AdviceWorkload{
		QueryRates:  map[string]float64{"getUser": 100},
		UpdateRates: map[string]float64{"users": 5},
		TableRows:   map[string]int{"users": 10_000, "follows": 1_000_000},
	}, adviceConfig())
	if err != nil {
		t.Fatalf("AdviseDDL: %v", err)
	}
	var accepted, rejected int
	for _, q := range rep.Queries {
		if q.Accepted {
			accepted++
		} else {
			rejected++
			if !strings.Contains(q.Reason, "CARDINALITY") {
				t.Errorf("rejection reason should name the missing bound: %q", q.Reason)
			}
		}
	}
	if accepted != 1 || rejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 1/1", accepted, rejected)
	}
}

func TestAdviseDDLParseError(t *testing.T) {
	if _, err := AdviseDDL("ENTITY (", analyzer.Config{}, AdviceWorkload{}, adviceConfig()); err == nil {
		t.Fatal("want parse error")
	}
}

func TestAdviseReportFormats(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 2)
	rep, err := lc.Advise(adviceWorkload(), adviceConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Format()
	if !strings.Contains(text, "CLUSTER SIZING") || !strings.Contains(text, "replicas") {
		t.Errorf("unexpected report:\n%s", text)
	}
}
