package scads

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"scads/internal/admission"
	"scads/internal/consistency"
	"scads/internal/partition"
	"scads/internal/planner"
	"scads/internal/query"
	"scads/internal/record"
	"scads/internal/row"
	"scads/internal/rpc"
)

// Insert stores a new row (or fully replaces an existing one) in a
// table, honouring the table's declared write-consistency mode, and
// schedules asynchronous index maintenance and replication.
func (c *Cluster) Insert(table string, r row.Row) error {
	_, err := c.insertAs(table, r, "")
	return err
}

// insertAs is Insert accounted to a tenant (InsertSession routes the
// session's bound tenant here; plain Insert uses the default tenant).
// It returns the version assigned to the write, the session floor for
// read-your-writes.
func (c *Cluster) insertAs(table string, r row.Row, tenant string) (uint64, error) {
	start := c.clk.Now()
	var ver uint64
	release, err := c.admitWrite(table, r, tenant, 1)
	if err == nil {
		ver, err = c.write(table, r, writeUpsert)
	}
	release()
	c.record(start, err)
	return ver, err
}

// admitWrite gates one keyed write through the admission controller.
// Shed writes still record their load against the balancer's tracker
// so sustained skew triggers rebalancing instead of vanishing behind
// the front door. The returned release is always safe to call.
func (c *Cluster) admitWrite(table string, pk row.Row, tenant string, cost float64) (func(), error) {
	release, err := c.admit(tenant, admission.OpWrite, cost)
	if err == nil {
		return release, nil
	}
	if t, terr := c.tableDef(table); terr == nil {
		if key, kerr := pkKey(t, pk); kerr == nil {
			ns := planner.TableNamespace(table)
			if m, ok := c.router.Map(ns); ok {
				c.loads.Record(ns, m.Lookup(key).Start, key)
			}
		}
	}
	return release, err
}

// Update applies a full-row write with the same semantics as Insert
// (SCADS rows are documents; partial updates go through UpdateFunc).
func (c *Cluster) Update(table string, r row.Row) error {
	return c.Insert(table, r)
}

// InsertBatch stores many rows in one coordinator pass: rows are
// normalized and versioned together, current row images are fetched
// with one batched read per node, and the new records are delivered
// as one multi-record apply per primary (one RPC, one WAL write, and
// — on engines with synchronous writes — one shared group-commit
// fsync). Replication and asynchronous index maintenance are enqueued
// per row exactly as Insert does, so consistency semantics are
// unchanged; tables whose spec declares serializable or merge write
// modes fall back to the per-row conflict-aware path.
func (c *Cluster) InsertBatch(table string, rows []row.Row) error {
	start := c.clk.Now()
	err := c.insertBatch(table, rows)
	c.record(start, err)
	return err
}

func (c *Cluster) insertBatch(table string, rows []row.Row) error {
	if len(rows) == 0 {
		return nil
	}
	// One admission for the whole batch at its row-count cost; the
	// conflict-aware fallback below goes through c.write directly
	// (not Insert), so the batch is never double-charged.
	release, err := c.admit("", admission.OpWrite, float64(len(rows)))
	if err != nil {
		if t, terr := c.tableDef(table); terr == nil {
			ns := planner.TableNamespace(table)
			if m, ok := c.router.Map(ns); ok {
				for _, r := range rows {
					if key, kerr := pkKey(t, r); kerr == nil {
						c.loads.Record(ns, m.Lookup(key).Start, key)
					}
				}
			}
		}
		return err
	}
	defer release()
	t, err := c.tableDef(table)
	if err != nil {
		return err
	}
	spec := c.specFor(table)
	if spec.Write == consistency.Serializable || spec.Write == consistency.MergeFunction {
		// Conflict-aware modes need an atomic read-modify-write per
		// row; the transport-level batcher still coalesces their RPCs.
		for _, r := range rows {
			if _, err := c.write(table, r, writeUpsert); err != nil {
				return err
			}
		}
		return nil
	}
	ns := planner.TableNamespace(table)
	m, ok := c.router.Map(ns)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", ns)
	}

	normalized := make([]row.Row, len(rows))
	keys := make([][]byte, len(rows))
	for i, r := range rows {
		nr, err := c.normalizeRow(t, r)
		if err != nil {
			return err
		}
		key, err := pkKey(t, nr)
		if err != nil {
			return err
		}
		normalized[i], keys[i] = nr, key
	}

	// Index maintenance needs each row's old image to retire stale
	// index entries; fetch them all with one batched read per node.
	curs, err := c.router.GetBatch(ns, keys, partition.ReadPrimary)
	if err != nil {
		return err
	}

	bound := c.stalenessBound(t.Name)
	type followUp struct {
		rec      record.Record
		replicas []string
		oldRow   row.Row
		newRow   row.Row
	}
	groups := make(map[string][]followUp) // primary node -> its rows
	// Later duplicates of a key within the batch must see the earlier
	// row as their old image, or index maintenance would never retire
	// the entries the earlier write created.
	prevInBatch := make(map[string]row.Row)
	for i, nr := range normalized {
		if curs[i].Err != nil {
			return curs[i].Err
		}
		var oldRow row.Row
		if curs[i].Found {
			if oldRow, err = row.Decode(curs[i].Value); err != nil {
				return err
			}
		}
		if prev, ok := prevInBatch[string(keys[i])]; ok {
			oldRow = prev
		}
		prevInBatch[string(keys[i])] = nr
		val, err := row.Encode(nr)
		if err != nil {
			return err
		}
		rec := record.Record{Key: keys[i], Value: val, Version: c.nextVersion()}
		rng := m.Lookup(keys[i])
		c.loads.Record(ns, rng.Start, keys[i])
		groups[rng.Replicas[0]] = append(groups[rng.Replicas[0]],
			followUp{rec: rec, replicas: rng.Replicas, oldRow: oldRow, newRow: nr})
	}
	// Apply the node groups concurrently. Replication and index
	// maintenance for a group are enqueued as soon as that group's
	// primary write lands — a failure of one node's group never
	// strands another group's applied records without follow-up.
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for node, ups := range groups {
		wg.Add(1)
		go func(node string, ups []followUp) {
			defer wg.Done()
			recs := make([]record.Record, len(ups))
			for i, u := range ups {
				recs[i] = u.rec
			}
			if err := c.router.Apply(ns, node, recs); err != nil {
				if !rpc.IsFenced(err) && !partition.IsUnavailable(err) {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				// The group hit a range mid-handoff or a crashed
				// primary: fall back to per-record routing, which
				// re-reads the map and waits out the fence or the
				// failover. Replicas are re-captured from the
				// post-flip ranges so replication follows the writes.
				for i := range ups {
					rng, err := c.applyToPrimary(ns, m, ups[i].rec.Key, []record.Record{ups[i].rec})
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					ups[i].replicas = rng.Replicas
				}
			}
			for _, u := range ups {
				c.enqueueReplication(ns, m, u.rec.Key, u.rec, partition.Range{Replicas: u.replicas}, bound)
				c.maint.push(maintTask{
					table:    t.Name,
					oldRow:   u.oldRow,
					newRow:   u.newRow,
					deadline: c.clk.Now().Add(bound),
				})
			}
		}(node, ups)
	}
	wg.Wait()
	return firstErr
}

// UpdateFunc performs an atomic read-modify-write of the row with the
// given primary key: fn receives the current row (nil if absent) and
// returns the replacement (nil means delete). Under the Serializable
// write mode this is the paper's "writes must be serializable, as in a
// traditional RDBMS"; under other modes it is still atomic with
// respect to other UpdateFunc calls through this coordinator.
func (c *Cluster) UpdateFunc(table string, pk row.Row, fn func(cur row.Row) (row.Row, error)) error {
	start := c.clk.Now()
	err := c.updateFunc(table, pk, fn)
	c.record(start, err)
	return err
}

func (c *Cluster) updateFunc(table string, pk row.Row, fn func(cur row.Row) (row.Row, error)) error {
	release, err := c.admitWrite(table, pk, "", 1)
	if err != nil {
		release()
		return err
	}
	defer release()
	t, err := c.tableDef(table)
	if err != nil {
		return err
	}
	key, err := pkKey(t, pk)
	if err != nil {
		return err
	}
	ns := planner.TableNamespace(table)
	return c.serializer.Do(ns, key, func() error {
		cur, _, err := c.readRow(ns, key)
		if err != nil {
			return err
		}
		next, err := fn(cur)
		if err != nil {
			return err
		}
		if next == nil {
			if cur == nil {
				return nil
			}
			_, err := c.applyWrite(t, key, cur, nil)
			return err
		}
		normalized, err := c.normalizeRow(t, next)
		if err != nil {
			return err
		}
		_, err = c.applyWrite(t, key, cur, normalized)
		return err
	})
}

// Delete tombstones the row with the given primary key.
func (c *Cluster) Delete(table string, pk row.Row) error {
	_, err := c.deleteAs(table, pk, "")
	return err
}

// deleteAs is Delete accounted to a tenant (DeleteSession routes the
// session's bound tenant here). It returns the tombstone's version (0
// when the row did not exist and nothing was written).
func (c *Cluster) deleteAs(table string, pk row.Row, tenant string) (uint64, error) {
	start := c.clk.Now()
	var ver uint64
	release, err := c.admitWrite(table, pk, tenant, 1)
	if err == nil {
		ver, err = c.delete(table, pk)
	}
	release()
	c.record(start, err)
	return ver, err
}

func (c *Cluster) delete(table string, pk row.Row) (uint64, error) {
	t, err := c.tableDef(table)
	if err != nil {
		return 0, err
	}
	key, err := pkKey(t, pk)
	if err != nil {
		return 0, err
	}
	ns := planner.TableNamespace(table)
	var ver uint64
	err = c.serializer.Do(ns, key, func() error {
		cur, _, err := c.readRow(ns, key)
		if err != nil {
			return err
		}
		if cur == nil {
			return nil
		}
		ver, err = c.applyWrite(t, key, cur, nil)
		return err
	})
	return ver, err
}

type writeKind int

const (
	writeUpsert writeKind = iota
)

// write implements Insert/Update: mode-dependent conflict handling,
// then the common apply path. It returns the version assigned to the
// write.
func (c *Cluster) write(table string, r row.Row, _ writeKind) (uint64, error) {
	t, err := c.tableDef(table)
	if err != nil {
		return 0, err
	}
	normalized, err := c.normalizeRow(t, r)
	if err != nil {
		return 0, err
	}
	key, err := pkKey(t, normalized)
	if err != nil {
		return 0, err
	}
	ns := planner.TableNamespace(table)
	spec := c.specFor(table)

	switch spec.Write {
	case consistency.Serializable, consistency.MergeFunction:
		// Both modes need the current value atomically.
		var ver uint64
		err := c.serializer.Do(ns, key, func() error {
			cur, _, err := c.readRow(ns, key)
			if err != nil {
				return err
			}
			next := normalized
			if spec.Write == consistency.MergeFunction && cur != nil {
				merged, err := c.mergeRows(spec.MergeName, cur, normalized)
				if err != nil {
					return err
				}
				next = merged
			}
			ver, err = c.applyWrite(t, key, cur, next)
			return err
		})
		return ver, err
	default: // last-write-wins
		cur, _, err := c.readRow(ns, key)
		if err != nil {
			return 0, err
		}
		return c.applyWrite(t, key, cur, normalized)
	}
}

// mergeRows resolves a write conflict through the registered merge
// function (§3.3.1: "the developer may specify a function that will
// merge conflicting writes"). A row-level merge (RegisterRowMerge)
// receives both whole rows and returns the winner; otherwise the
// byte-level function registered under the same name is applied
// column-wise to differing string columns. Commutative merges make
// replicas converge regardless of write order.
func (c *Cluster) mergeRows(mergeName string, old, new row.Row) (row.Row, error) {
	if fn, ok := c.lookupRowMerge(mergeName); ok {
		merged := fn(old.Clone(), new.Clone())
		if merged == nil {
			return new, nil
		}
		return merged, nil
	}
	fn, err := c.merges.Lookup(mergeName)
	if err != nil {
		return nil, err
	}
	merged := new.Clone()
	for col, ov := range old {
		nv, ok := merged[col]
		if !ok {
			merged[col] = ov
			continue
		}
		os, oldIsStr := ov.(string)
		ns, newIsStr := nv.(string)
		if oldIsStr && newIsStr && os != ns {
			merged[col] = string(fn([]byte(os), []byte(ns)))
		}
	}
	return merged, nil
}

// applyToPrimary delivers pre-versioned records to the primary of
// key's range, re-reading the partition map and retrying when the
// primary is write-fenced for migration handoff (shared rpc.FenceRetry
// policy) or unreachable/down (shared rpc.DownRetry policy — the
// repair manager's failover flip re-routes the retry to the promoted
// replica). It returns the range that accepted the write, so callers
// enqueue replication to the replica set that is actually serving it.
func (c *Cluster) applyToPrimary(ns string, m *partition.Map, key []byte, recs []record.Record) (partition.Range, error) {
	// Fence retries are counted separately from the wall-clock down
	// budget: a write that waited out a crash failover must still get
	// its full fence allowance when the promoted primary is briefly
	// fenced by the ensuing RF-repair handoff.
	downDeadline := time.Now().Add(rpc.DownRetryBudget)
	fenceAttempts := 0
	for {
		rng := m.Lookup(key)
		err := c.router.Apply(ns, rng.Replicas[0], recs)
		if err == nil {
			return rng, nil
		}
		switch {
		case rpc.IsFenced(err) && fenceAttempts < rpc.FenceRetryLimit:
			// The fence lifts (or routing flips away from it) shortly;
			// real sleep rather than the virtual clock, since the fence
			// is held by a concurrent migration goroutine, not by time.
			fenceAttempts++
			time.Sleep(rpc.FenceRetryPause)
		case partition.IsUnavailable(err) && time.Now().Before(downDeadline):
			// The primary crashed; wait out failure detection plus the
			// failover flip (wall-clock budget: one TCP attempt can
			// burn a whole dial timeout). Real sleep for the same
			// reason: recovery is driven by the repair goroutine, not
			// by clock time.
			time.Sleep(rpc.DownRetryPause)
		case rpc.IsOverloaded(err) && time.Now().Before(downDeadline):
			// The node shed the apply under its handler bound: honor
			// the retry-after hint under the same wall-clock budget,
			// so backpressure slows writes instead of failing them.
			time.Sleep(rpc.RetryAfter(err))
		default:
			return rng, err
		}
	}
}

// enqueueReplication schedules rec for delivery to the secondaries of
// the range that acknowledged it, then re-reads the partition map and
// also covers any member a racing reconfiguration added in between. A
// migration's flip-time Rebind clones only updates that are already
// queued, so an update enqueued just after a flip — against the
// pre-flip replica set it captured before the apply — would otherwise
// permanently miss the range's new members; the post-enqueue re-read
// closes that window from the other side (duplicates are harmless:
// applies are last-write-wins by version, and a delivery to a node
// that lost the range bounces off its residual fence).
func (c *Cluster) enqueueReplication(ns string, m *partition.Map, key []byte, rec record.Record, acked partition.Range, bound time.Duration) {
	if len(acked.Replicas) > 1 {
		c.pump.Enqueue(ns, rec, acked.Replicas[1:], bound)
	}
	cur := m.Lookup(key)
	var added []string
	for _, id := range cur.Replicas {
		seen := false
		for _, old := range acked.Replicas {
			if old == id {
				seen = true
				break
			}
		}
		if !seen {
			added = append(added, id)
		}
	}
	if len(added) > 0 {
		c.pump.Enqueue(ns, rec, added, bound)
	}
}

// applyWrite is the common write path: version the record, write the
// table primary, enqueue replication to secondaries, and enqueue
// asynchronous index maintenance with the namespace's staleness
// deadline. It returns the version assigned to the record — the exact
// session floor for read-your-writes (an upper bound like the
// coordinator's current HLC would overshoot under concurrent writers
// and make the session reject even the primary's answer).
func (c *Cluster) applyWrite(t *query.TableDef, key []byte, oldRow, newRow row.Row) (uint64, error) {
	ns := planner.TableNamespace(t.Name)
	rec := record.Record{Key: key, Version: c.nextVersion()}
	if newRow == nil {
		rec.Tombstone = true
	} else {
		val, err := row.Encode(newRow)
		if err != nil {
			return 0, err
		}
		rec.Value = val
	}

	m, ok := c.router.Map(ns)
	if !ok {
		return 0, fmt.Errorf("scads: no partition map for %s", ns)
	}
	c.loads.Record(ns, m.Lookup(key).Start, key)
	rng, err := c.applyToPrimary(ns, m, key, []record.Record{rec})
	if err != nil {
		return 0, err
	}
	bound := c.stalenessBound(t.Name)
	c.enqueueReplication(ns, m, key, rec, rng, bound)

	// Asynchronous index maintenance (§3.2): enqueue the base change;
	// DrainMaintenance (or the background pump) computes and applies
	// the bounded index updates before the staleness deadline.
	c.maint.push(maintTask{
		table:    t.Name,
		oldRow:   oldRow,
		newRow:   newRow,
		deadline: c.clk.Now().Add(bound),
	})
	return rec.Version, nil
}

// readRow fetches the current row from the primary (nil when absent).
func (c *Cluster) readRow(ns string, key []byte) (row.Row, uint64, error) {
	val, ver, found, err := c.router.Get(ns, key, partition.ReadPrimary)
	if err != nil || !found {
		return nil, 0, err
	}
	r, err := row.Decode(val)
	if err != nil {
		return nil, 0, err
	}
	return r, ver, nil
}

// DrainMaintenance synchronously runs up to budget pending index
// maintenance tasks in deadline order, returning how many ran.
// Simulations call this each tick; FlushAll drains everything.
func (c *Cluster) DrainMaintenance(budget int) (int, error) {
	c.mu.RLock()
	views := c.views
	c.mu.RUnlock()
	if views == nil {
		return 0, nil
	}
	n := 0
	for n < budget {
		task, ok := c.maint.pop()
		if !ok {
			return n, nil
		}
		n++
		muts, err := views.Mutations(task.table, task.oldRow, task.newRow)
		if err != nil {
			return n, fmt.Errorf("scads: maintenance for %s: %w", task.table, err)
		}
		for _, mut := range muts {
			if err := c.applyIndexMutation(mut.Namespace, mut.Key, mut.Value); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

func (c *Cluster) applyIndexMutation(ns string, key []byte, val row.Row) error {
	rec := record.Record{Key: key, Version: c.nextVersion()}
	if val == nil {
		rec.Tombstone = true
	} else {
		enc, err := row.Encode(val)
		if err != nil {
			return err
		}
		rec.Value = enc
	}
	m, ok := c.router.Map(ns)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", ns)
	}
	rng, err := c.applyToPrimary(ns, m, key, []record.Record{rec})
	if err != nil {
		return err
	}
	c.enqueueReplication(ns, m, key, rec, rng, c.cfg.DefaultStaleness)
	return nil
}

// FlushAll drains all pending maintenance and replication — the "wait
// for quiescence" helper used by tests and examples.
func (c *Cluster) FlushAll() error {
	for {
		n, err := c.DrainMaintenance(1024)
		if err != nil {
			return err
		}
		r := c.pump.Drain(4096)
		if n == 0 && r == 0 {
			return nil
		}
	}
}

// MaintenanceBacklog reports pending maintenance tasks and how many
// are at risk of missing their deadline within margin.
func (c *Cluster) MaintenanceBacklog(margin time.Duration) (pending, atRisk int) {
	return c.maint.Len(), c.maint.AtRisk(c.clk.Now(), margin)
}

// --- deadline-ordered maintenance queue ---

type maintTask struct {
	table    string
	oldRow   row.Row
	newRow   row.Row
	deadline time.Time
	seq      int64
}

type maintQueue struct {
	mu  sync.Mutex
	h   maintHeap
	seq int64
}

func newMaintQueue() *maintQueue { return &maintQueue{} }

func (q *maintQueue) push(t maintTask) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	t.seq = q.seq
	heap.Push(&q.h, t)
}

func (q *maintQueue) pop() (maintTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.h) == 0 {
		return maintTask{}, false
	}
	return heap.Pop(&q.h).(maintTask), true
}

// Len reports queue depth.
func (q *maintQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.h)
}

// AtRisk counts tasks whose deadline is within margin of now.
func (q *maintQueue) AtRisk(now time.Time, margin time.Duration) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	limit := now.Add(margin)
	n := 0
	for _, t := range q.h {
		if !t.deadline.After(limit) {
			n++
		}
	}
	return n
}

type maintHeap []maintTask

func (h maintHeap) Len() int { return len(h) }
func (h maintHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h maintHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *maintHeap) Push(x any)   { *h = append(*h, x.(maintTask)) }
func (h *maintHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// tableDef resolves a table by name.
func (c *Cluster) tableDef(table string) (*query.TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.schema == nil {
		return nil, ErrNoSchema
	}
	t, ok := c.schema.Tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, table)
	}
	return t, nil
}

// normalizeRow widens literal types and validates against the table's
// columns; unknown columns are rejected, missing non-key columns are
// allowed (sparse rows).
func (c *Cluster) normalizeRow(t *query.TableDef, r row.Row) (row.Row, error) {
	out := make(row.Row, len(r))
	for col, v := range r {
		def, ok := t.Column(col)
		if !ok {
			return nil, fmt.Errorf("scads: table %s has no column %q", t.Name, col)
		}
		nv := row.Normalize(v)
		if err := row.CheckType(def.Type, nv); err != nil {
			return nil, fmt.Errorf("scads: table %s: %w", t.Name, err)
		}
		out[col] = nv
	}
	for _, pk := range t.PrimaryKey {
		if _, ok := out[pk]; !ok {
			return nil, fmt.Errorf("scads: table %s: primary key column %q missing", t.Name, pk)
		}
	}
	return out, nil
}

// pkKey builds the storage key from a row containing the primary key
// columns.
func pkKey(t *query.TableDef, r row.Row) ([]byte, error) {
	norm := make(row.Row, len(t.PrimaryKey))
	for _, pk := range t.PrimaryKey {
		v, ok := r[pk]
		if !ok {
			return nil, fmt.Errorf("scads: primary key column %q missing", pk)
		}
		norm[pk] = row.Normalize(v)
	}
	return row.EncodeKey(norm, t.PrimaryKey)
}
