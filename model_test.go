package scads

// Golden-model test: a random stream of social-network operations is
// applied both to a real SCADS cluster and to a naive in-memory model;
// after quiescence every declared query must return exactly what the
// model computes by brute force. This pins the whole pipeline — query
// compilation, index maintenance, replication, merge of layered
// storage — against an independent implementation of the semantics.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"scads/internal/clock"
)

type modelState struct {
	users   map[string]Row             // id -> profile
	friends map[string]map[string]bool // f1 -> set of f2
}

func newModelState() *modelState {
	return &modelState{
		users:   make(map[string]Row),
		friends: make(map[string]map[string]bool),
	}
}

func (m *modelState) addFriend(a, b string) {
	if m.friends[a] == nil {
		m.friends[a] = make(map[string]bool)
	}
	m.friends[a][b] = true
}

func (m *modelState) removeFriend(a, b string) {
	delete(m.friends[a], b)
}

// birthdayQuery computes friendsWithUpcomingBirthdays by brute force.
func (m *modelState) birthdayQuery(user string, limit int) []Row {
	type entry struct {
		bday int64
		fid  string
		row  Row
	}
	var entries []entry
	for fid := range m.friends[user] {
		p, ok := m.users[fid]
		if !ok {
			continue
		}
		entries = append(entries, entry{p["birthday"].(int64), fid, p})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].bday != entries[j].bday {
			return entries[i].bday < entries[j].bday
		}
		return entries[i].fid < entries[j].fid
	})
	if len(entries) > limit {
		entries = entries[:limit]
	}
	out := make([]Row, len(entries))
	for i, e := range entries {
		out[i] = e.row
	}
	return out
}

func (m *modelState) friendsQuery(user string) []string {
	var out []string
	for fid := range m.friends[user] {
		out = append(out, fid)
	}
	sort.Strings(out)
	return out
}

func TestGoldenModelRandomOps(t *testing.T) {
	const (
		seeds    = 5
		opsPer   = 300
		userPool = 25
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			vc := clock.NewVirtual(t0)
			lc, err := NewLocalCluster(3, Config{Clock: vc, ReplicationFactor: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer lc.Close()
			if err := lc.DefineSchema(socialDDL); err != nil {
				t.Fatal(err)
			}
			model := newModelState()

			uid := func() string { return fmt.Sprintf("u%02d", rnd.Intn(userPool)) }
			for op := 0; op < opsPer; op++ {
				switch rnd.Intn(10) {
				case 0, 1, 2: // upsert profile
					id := uid()
					r := Row{"id": id, "name": "N" + id, "birthday": int64(rnd.Intn(365) + 1)}
					if err := lc.Insert("users", r); err != nil {
						t.Fatal(err)
					}
					model.users[id] = r
				case 3: // delete profile
					id := uid()
					if err := lc.Delete("users", Row{"id": id}); err != nil {
						t.Fatal(err)
					}
					delete(model.users, id)
				case 4, 5, 6, 7: // add friendship
					a, b := uid(), uid()
					if a == b {
						continue
					}
					if err := lc.Insert("friendships", Row{"f1": a, "f2": b}); err != nil {
						t.Fatal(err)
					}
					model.addFriend(a, b)
				case 8: // remove friendship
					a, b := uid(), uid()
					if err := lc.Delete("friendships", Row{"f1": a, "f2": b}); err != nil {
						t.Fatal(err)
					}
					model.removeFriend(a, b)
				case 9: // advance time (staleness deadlines shuffle)
					vc.Advance(time.Duration(rnd.Intn(5)+1) * time.Second)
				}
				if rnd.Intn(7) == 0 {
					if err := lc.FlushAll(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := lc.FlushAll(); err != nil {
				t.Fatal(err)
			}

			// Every user: both queries must match the model exactly.
			for i := 0; i < userPool; i++ {
				user := fmt.Sprintf("u%02d", i)

				gotFriends, err := lc.Query("friends", map[string]any{"user": user})
				if err != nil {
					t.Fatal(err)
				}
				var gotIDs []string
				for _, r := range gotFriends {
					gotIDs = append(gotIDs, r["f2"].(string))
				}
				sort.Strings(gotIDs)
				wantIDs := model.friendsQuery(user)
				if fmt.Sprint(gotIDs) != fmt.Sprint(wantIDs) {
					t.Fatalf("friends(%s): got %v want %v", user, gotIDs, wantIDs)
				}

				gotBday, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": user})
				if err != nil {
					t.Fatal(err)
				}
				wantBday := model.birthdayQuery(user, 50)
				if len(gotBday) != len(wantBday) {
					t.Fatalf("birthdays(%s): got %d rows want %d\n got: %v\nwant: %v",
						user, len(gotBday), len(wantBday), gotBday, wantBday)
				}
				for j := range wantBday {
					if gotBday[j]["id"] != wantBday[j]["id"] || gotBday[j]["birthday"] != wantBday[j]["birthday"] {
						t.Fatalf("birthdays(%s)[%d]: got %v want %v", user, j, gotBday[j], wantBday[j])
					}
				}
			}
		})
	}
}
