package scads

import (
	"fmt"
	"testing"

	"scads/internal/planner"
)

func TestSpreadNamespaceMovesData(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	seedUsers(t, lc.Cluster, 40)
	lc.FlushAll()

	// Split users into 4 ranges, then add two fresh nodes and spread.
	if err := lc.SplitTable("users", "user0010", "user0020", "user0030"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := lc.AddStorageNode(); err != nil {
			t.Fatal(err)
		}
	}
	ns := planner.TableNamespace("users")
	if err := lc.SpreadNamespace(ns); err != nil {
		t.Fatal(err)
	}

	// Every key still readable.
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after spread: found=%v err=%v", id, found, err)
		}
	}
	// The ranges now use more than the original node set.
	m, _ := lc.Router().Map(ns)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if nodes := m.NodesInUse(); len(nodes) < 4 {
		t.Fatalf("spread used only %d nodes: %v", len(nodes), nodes)
	}
}

func TestDecommissionDeadPrimary(t *testing.T) {
	lc, _ := newSocialCluster(t, 3, 2)
	seedUsers(t, lc.Cluster, 30)
	lc.FlushAll() // both replicas hold everything

	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	victim := m.Ranges()[0].Replicas[0]
	lc.CrashNode(victim)

	// Find a serving node not already in the group.
	var candidate string
	for _, id := range lc.NodeIDs() {
		inGroup := false
		for _, rid := range m.Ranges()[0].Replicas {
			if rid == id {
				inGroup = true
			}
		}
		if !inGroup && id != victim {
			candidate = id
		}
	}
	if candidate == "" {
		t.Fatal("no candidate node")
	}

	if err := lc.DecommissionNode(victim, []string{candidate}); err != nil {
		t.Fatal(err)
	}

	// The dead node is out of every replica group.
	for _, nsName := range lc.Router().Namespaces() {
		pm, _ := lc.Router().Map(nsName)
		if pm.NodesInUse()[victim] {
			t.Fatalf("victim still referenced by %s", nsName)
		}
	}
	// All data survived (copied from the live replica) and writes work.
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) after decommission: found=%v err=%v", id, found, err)
		}
	}
	if err := lc.Insert("users", Row{"id": "post-decom", "name": "X", "birthday": 1}); err != nil {
		t.Fatalf("write after decommission: %v", err)
	}
}

func TestDecommissionShrinksWhenNoCandidate(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 2)
	seedUsers(t, lc.Cluster, 10)
	lc.FlushAll()

	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	victim := m.Ranges()[0].Replicas[1] // secondary, so copies aren't needed
	if err := lc.DecommissionNode(victim, nil); err != nil {
		t.Fatal(err)
	}
	if m.NodesInUse()[victim] {
		t.Fatal("victim still in use")
	}
	if got := len(m.Ranges()[0].Replicas); got != 1 {
		t.Fatalf("replica group size = %d, want shrunk to 1", got)
	}
}

func TestSpreadAllCoversIndexNamespaces(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	lc.Insert("users", Row{"id": "bob", "name": "B", "birthday": 3})
	lc.Insert("friendships", Row{"f1": "alice", "f2": "bob"})
	lc.FlushAll()
	for i := 0; i < 2; i++ {
		lc.AddStorageNode()
	}
	if err := lc.SpreadAll(); err != nil {
		t.Fatal(err)
	}
	rows, err := lc.Query("friendsWithUpcomingBirthdays", map[string]any{"user": "alice"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("view after SpreadAll: %v %v", rows, err)
	}
}
