package scads

import (
	"fmt"
	"testing"

	"scads/internal/planner"
)

func TestPlanAndEnforceDurability(t *testing.T) {
	// RF=1 cluster; users declares five nines -> needs 3 replicas at
	// p(fail)=0.01 per repair window.
	lc, _ := newSocialCluster(t, 4, 1)
	if err := lc.ApplyConsistency(`
namespace users { durability: 99.999%; }
`); err != nil {
		t.Fatal(err)
	}
	seedUsers(t, lc.Cluster, 20)
	lc.FlushAll()

	plans, err := lc.PlanDurability(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 {
		t.Fatalf("plans = %+v", plans)
	}
	p := plans[0]
	if p.Table != "users" || p.RequiredReplicas != 3 || p.CurrentReplicas != 1 || p.Satisfied() {
		t.Fatalf("plan = %+v", p)
	}

	after, err := lc.EnforceDurability(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !after[0].Satisfied() {
		t.Fatalf("enforcement did not satisfy: %+v", after[0])
	}
	// The map now carries >= 3 replicas on every users range and each
	// replica actually holds the data: kill any two of them and reads
	// still succeed.
	ns := planner.TableNamespace("users")
	m, _ := lc.Router().Map(ns)
	replicas := m.Ranges()[0].Replicas
	if len(replicas) < 3 {
		t.Fatalf("replicas = %v", replicas)
	}
	lc.CrashNode(replicas[0])
	lc.CrashNode(replicas[1])
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("user%04d", i)
		if _, found, err := lc.Get("users", Row{"id": id}); err != nil || !found {
			t.Fatalf("Get(%s) with 2 replicas dead: found=%v err=%v", id, found, err)
		}
	}
}

func TestEnforceDurabilityInsufficientNodes(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	lc.ApplyConsistency(`namespace users { durability: 99.999%; }`)
	lc.Insert("users", Row{"id": "a", "name": "A", "birthday": 1})
	lc.FlushAll()
	if _, err := lc.EnforceDurability(0.01); err == nil {
		t.Fatal("enforcement succeeded with only 2 nodes for 3 replicas")
	}
}

func TestPlanDurabilitySkipsUnspecified(t *testing.T) {
	lc, _ := newSocialCluster(t, 2, 1)
	lc.ApplyConsistency(`namespace users { staleness: 5s; }`) // no durability
	plans, err := lc.PlanDurability(0.01)
	if err != nil || len(plans) != 0 {
		t.Fatalf("plans = %v err = %v", plans, err)
	}
}
