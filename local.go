package scads

import (
	"fmt"
	"sync"

	"scads/internal/cluster"
	"scads/internal/rpc"
	"scads/internal/storage"
)

// defaultNodeBlockCacheBytes sizes the per-node decoded-block cache a
// disk-backed LocalCluster node gets unless Config.NodeStorage says
// otherwise (negative = disabled). In-memory nodes have no SSTables
// and never build one.
const defaultNodeBlockCacheBytes = 16 << 20

// LocalCluster bundles a Cluster with in-process storage nodes — the
// form every test, example and simulation uses. Nodes run the same
// cluster.Node code a TCP deployment serves; only the transport is
// in-memory.
type LocalCluster struct {
	*Cluster
	Transport *rpc.LocalTransport

	mu     sync.Mutex
	nodes  map[string]*cluster.Node
	nextID int
}

// NewLocalCluster creates n in-memory storage nodes, registers them as
// serving, and opens a Cluster over them. The Config's Transport and
// Directory fields are filled in.
func NewLocalCluster(n int, cfg Config) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("scads: local cluster needs at least one node")
	}
	cfg = cfg.withDefaults()
	lt := rpc.NewLocalTransport()
	dir := cluster.NewDirectory(cfg.Clock)
	cfg.Transport = lt
	cfg.Directory = dir

	c, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{
		Cluster:   c,
		Transport: lt,
		nodes:     make(map[string]*cluster.Node),
	}
	for i := 0; i < n; i++ {
		if _, err := lc.AddStorageNode(); err != nil {
			return nil, err
		}
	}
	return lc, nil
}

// AddStorageNode boots one more in-memory node, registers it, and
// marks it serving. Returns the node ID.
func (lc *LocalCluster) AddStorageNode() (string, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.nextID++
	id := fmt.Sprintf("node-%03d", lc.nextID)
	sopts := lc.cfg.NodeStorage
	sopts.Clock = lc.clk
	sopts.NodeID = uint16(lc.nextID)
	if sopts.Dir != "" {
		// Per-node subdirectory so nodes sharing a configured data
		// root never collide.
		sopts.Dir = fmt.Sprintf("%s/%s", sopts.Dir, id)
		if sopts.BlockCacheBytes == 0 {
			// Disk-backed nodes default the decoded-block cache on;
			// pass a negative value to keep it off (ablations).
			sopts.BlockCacheBytes = defaultNodeBlockCacheBytes
		}
	}
	engine, err := storage.Open(sopts)
	if err != nil {
		return "", err
	}
	node := cluster.NewNode(id, engine)
	lc.nodes[id] = node
	addr := "local://" + id
	lc.Transport.Register(addr, node)
	lc.dir.Join(id, addr)
	lc.dir.MarkUp(id)
	return id, nil
}

// Node returns the in-process node by ID (tests reach into storage
// state through it).
func (lc *LocalCluster) Node(id string) (*cluster.Node, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	n, ok := lc.nodes[id]
	return n, ok
}

// NodeIDs lists the node IDs in registration order-independent sorted
// form via the directory.
func (lc *LocalCluster) NodeIDs() []string {
	var out []string
	for _, m := range lc.dir.Members() {
		out = append(out, m.ID)
	}
	return out
}

// CrashNode simulates a node failure: unreachable and marked down.
func (lc *LocalCluster) CrashNode(id string) {
	lc.Transport.SetDown("local://"+id, true)
	lc.dir.MarkDown(id)
}

// RecoverNode brings a crashed node back.
func (lc *LocalCluster) RecoverNode(id string) {
	lc.Transport.SetDown("local://"+id, false)
	lc.dir.MarkUp(id)
}

// PartitionReplica severs only the replication link to the node: it
// keeps serving reads but stops receiving updates, so its data grows
// stale — the replica-in-the-disconnected-datacenter of §3.3.1. Writes
// destined for it park in the deadline queue and deliver after
// HealReplica.
func (lc *LocalCluster) PartitionReplica(id string) {
	lc.Transport.SetApplyDown("local://"+id, true)
}

// HealReplica restores the replication link severed by
// PartitionReplica.
func (lc *LocalCluster) HealReplica(id string) {
	lc.Transport.SetApplyDown("local://"+id, false)
}

// MoveRange migrates the partition containing key in the given
// namespace to a new replica group, online and lossless: the
// migration manager snapshots the range from the current holders,
// catches the new replicas up through sequence-watermarked deltas,
// briefly write-fences the donor primary for the final drain, flips
// the partition map, and tears the range down on nodes that lost it.
// Writes keep flowing throughout — a write arriving during the fence
// pause bounces, is re-routed, and lands on the new primary. This is
// the data-movement primitive behind Rebalance, SpreadNamespace,
// DecommissionNode and the elastic actuator.
func (c *Cluster) MoveRange(namespace string, key []byte, newReplicas []string) error {
	m, ok := c.router.Map(namespace)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", namespace)
	}
	return c.migrations.MoveRange(m, namespace, key, newReplicas)
}

// ReplicateRangeTo adds targets as additional replicas of the range
// containing key (used when raising the replication factor to meet a
// durability SLA — Figure 4 row 5).
func (c *Cluster) ReplicateRangeTo(namespace string, key []byte, targets []string) error {
	m, ok := c.router.Map(namespace)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", namespace)
	}
	rng := m.Lookup(key)
	newReplicas := append(append([]string(nil), rng.Replicas...), targets...)
	return c.MoveRange(namespace, key, newReplicas)
}
