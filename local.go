package scads

import (
	"fmt"
	"sync"

	"scads/internal/cluster"
	"scads/internal/partition"
	"scads/internal/rpc"
	"scads/internal/storage"
)

// LocalCluster bundles a Cluster with in-process storage nodes — the
// form every test, example and simulation uses. Nodes run the same
// cluster.Node code a TCP deployment serves; only the transport is
// in-memory.
type LocalCluster struct {
	*Cluster
	Transport *rpc.LocalTransport

	mu     sync.Mutex
	nodes  map[string]*cluster.Node
	nextID int
}

// NewLocalCluster creates n in-memory storage nodes, registers them as
// serving, and opens a Cluster over them. The Config's Transport and
// Directory fields are filled in.
func NewLocalCluster(n int, cfg Config) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("scads: local cluster needs at least one node")
	}
	cfg = cfg.withDefaults()
	lt := rpc.NewLocalTransport()
	dir := cluster.NewDirectory(cfg.Clock)
	cfg.Transport = lt
	cfg.Directory = dir

	c, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	lc := &LocalCluster{
		Cluster:   c,
		Transport: lt,
		nodes:     make(map[string]*cluster.Node),
	}
	for i := 0; i < n; i++ {
		if _, err := lc.AddStorageNode(); err != nil {
			return nil, err
		}
	}
	return lc, nil
}

// AddStorageNode boots one more in-memory node, registers it, and
// marks it serving. Returns the node ID.
func (lc *LocalCluster) AddStorageNode() (string, error) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.nextID++
	id := fmt.Sprintf("node-%03d", lc.nextID)
	sopts := lc.cfg.NodeStorage
	sopts.Clock = lc.clk
	sopts.NodeID = uint16(lc.nextID)
	if sopts.Dir != "" {
		// Per-node subdirectory so nodes sharing a configured data
		// root never collide.
		sopts.Dir = fmt.Sprintf("%s/%s", sopts.Dir, id)
	}
	engine, err := storage.Open(sopts)
	if err != nil {
		return "", err
	}
	node := cluster.NewNode(id, engine)
	lc.nodes[id] = node
	addr := "local://" + id
	lc.Transport.Register(addr, node)
	lc.dir.Join(id, addr)
	lc.dir.MarkUp(id)
	return id, nil
}

// Node returns the in-process node by ID (tests reach into storage
// state through it).
func (lc *LocalCluster) Node(id string) (*cluster.Node, bool) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	n, ok := lc.nodes[id]
	return n, ok
}

// NodeIDs lists the node IDs in registration order-independent sorted
// form via the directory.
func (lc *LocalCluster) NodeIDs() []string {
	var out []string
	for _, m := range lc.dir.Members() {
		out = append(out, m.ID)
	}
	return out
}

// CrashNode simulates a node failure: unreachable and marked down.
func (lc *LocalCluster) CrashNode(id string) {
	lc.Transport.SetDown("local://"+id, true)
	lc.dir.MarkDown(id)
}

// RecoverNode brings a crashed node back.
func (lc *LocalCluster) RecoverNode(id string) {
	lc.Transport.SetDown("local://"+id, false)
	lc.dir.MarkUp(id)
}

// PartitionReplica severs only the replication link to the node: it
// keeps serving reads but stops receiving updates, so its data grows
// stale — the replica-in-the-disconnected-datacenter of §3.3.1. Writes
// destined for it park in the deadline queue and deliver after
// HealReplica.
func (lc *LocalCluster) PartitionReplica(id string) {
	lc.Transport.SetApplyDown("local://"+id, true)
}

// HealReplica restores the replication link severed by
// PartitionReplica.
func (lc *LocalCluster) HealReplica(id string) {
	lc.Transport.SetApplyDown("local://"+id, false)
}

// MoveRange migrates the partition containing key in the given
// namespace to a new replica group: it copies the range's records to
// the new replicas, flips the partition map, and drops the range from
// nodes that no longer own it. This is the data-movement primitive the
// director's rebalancer uses when the cluster grows or shrinks.
func (c *Cluster) MoveRange(namespace string, key []byte, newReplicas []string) error {
	m, ok := c.router.Map(namespace)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", namespace)
	}
	rng := m.Lookup(key)

	// Copy data to replicas that don't already hold it.
	old := make(map[string]bool, len(rng.Replicas))
	for _, id := range rng.Replicas {
		old[id] = true
	}
	var additions []string
	for _, id := range newReplicas {
		if !old[id] {
			additions = append(additions, id)
		}
	}
	if len(additions) > 0 {
		if err := c.copyRange(namespace, rng, additions); err != nil {
			return err
		}
	}

	if err := m.SetReplicas(key, newReplicas); err != nil {
		return err
	}

	// Drop the range from nodes that lost it.
	keep := make(map[string]bool, len(newReplicas))
	for _, id := range newReplicas {
		keep[id] = true
	}
	for _, id := range rng.Replicas {
		if keep[id] {
			continue
		}
		addr, okAddr := c.addrOf(id)
		if !okAddr {
			continue // down node: it will be decommissioned anyway
		}
		resp, err := c.cfg.Transport.Call(addr, rpc.Request{
			Method: rpc.MethodDropRange, Namespace: namespace,
			Start: rng.Start, End: rng.End,
		})
		if err != nil {
			return err
		}
		if e := resp.Error(); e != nil {
			return e
		}
	}
	return nil
}

// copyRange streams the range's records from the current primary to
// the target nodes in bounded pages.
func (c *Cluster) copyRange(namespace string, rng partition.Range, targets []string) error {
	const page = 1024
	start := rng.Start
	for {
		recs, err := c.router.Scan(namespace, start, rng.End, page, partition.ReadPrimary)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return nil
		}
		for _, target := range targets {
			if err := c.router.Apply(namespace, target, recs); err != nil {
				return err
			}
		}
		if len(recs) < page {
			return nil
		}
		// Next page starts just after the last key: the smallest key
		// greater than k is k with a zero byte appended.
		last := recs[len(recs)-1].Key
		start = append(append([]byte(nil), last...), 0x00)
	}
}

func (c *Cluster) addrOf(nodeID string) (string, bool) {
	m, ok := c.dir.Get(nodeID)
	if !ok || m.Status != cluster.StatusUp {
		return "", false
	}
	return m.Addr, true
}

// ReplicateRangeTo adds targets as additional replicas of the range
// containing key (used when raising the replication factor to meet a
// durability SLA — Figure 4 row 5).
func (c *Cluster) ReplicateRangeTo(namespace string, key []byte, targets []string) error {
	m, ok := c.router.Map(namespace)
	if !ok {
		return fmt.Errorf("scads: no partition map for %s", namespace)
	}
	rng := m.Lookup(key)
	newReplicas := append(append([]string(nil), rng.Replicas...), targets...)
	return c.MoveRange(namespace, key, newReplicas)
}
