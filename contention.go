package scads

import (
	"sync"
	"time"

	"scads/internal/consistency"
)

// ContentionEvent records one §3.3.1 requirement contention: real-world
// conditions (a partition, congested links) made two declared
// requirements unsatisfiable at once, and the namespace's priority
// ordering decided which to sacrifice. The paper requires that
// "failures of this type will be noted and used as input to the
// manager functions that re-provision the system in the future, either
// automatically or by notifying operators" — the cluster keeps a
// bounded log of them, exposes counters to the director, and invokes
// the operator callback when one is set.
type ContentionEvent struct {
	// At is the cluster-clock time of the contention.
	At time.Time
	// Table whose read hit the contention.
	Table string
	// Won is the axis the declared priority order preserved; Sacrificed
	// is the axis given up. With read-consistency prioritised the read
	// fails (availability sacrificed); with availability prioritised the
	// read serves data older than the staleness bound (read-consistency
	// sacrificed).
	Won        consistency.Axis
	Sacrificed consistency.Axis
	// StaleServed reports whether a stale value was returned (true only
	// when availability won and a stale replica answered).
	StaleServed bool
}

// maxContentionEvents bounds the in-memory log; older events are
// dropped once counters have absorbed them.
const maxContentionEvents = 1024

// contentionLog is the cluster's bounded event log plus counters.
type contentionLog struct {
	mu     sync.Mutex
	events []ContentionEvent
	total  int64
	stale  int64 // availability won: stale data served
	failed int64 // read-consistency won: reads failed

	onEvent func(ContentionEvent)
}

func (l *contentionLog) record(ev ContentionEvent) {
	l.mu.Lock()
	l.total++
	if ev.Sacrificed == consistency.AxisReadConsistency {
		l.stale++
	} else {
		l.failed++
	}
	l.events = append(l.events, ev)
	if len(l.events) > maxContentionEvents {
		l.events = l.events[len(l.events)-maxContentionEvents:]
	}
	cb := l.onEvent
	l.mu.Unlock()
	if cb != nil {
		cb(ev)
	}
}

// ContentionStats aggregates requirement contentions since the cluster
// opened. The director reads these to learn that declared requirements
// were unsatisfiable — a re-provisioning signal distinct from latency
// SLA violations.
type ContentionStats struct {
	// Total contentions observed.
	Total int64
	// StaleServed counts contentions resolved by serving stale data
	// (availability prioritised).
	StaleServed int64
	// ReadsFailed counts contentions resolved by failing the read
	// (read-consistency prioritised).
	ReadsFailed int64
}

// Contention returns aggregate contention counters.
func (c *Cluster) Contention() ContentionStats {
	c.contention.mu.Lock()
	defer c.contention.mu.Unlock()
	return ContentionStats{
		Total:       c.contention.total,
		StaleServed: c.contention.stale,
		ReadsFailed: c.contention.failed,
	}
}

// ContentionEvents returns a copy of the recent contention event log
// (most recent last, bounded).
func (c *Cluster) ContentionEvents() []ContentionEvent {
	c.contention.mu.Lock()
	defer c.contention.mu.Unlock()
	out := make([]ContentionEvent, len(c.contention.events))
	copy(out, c.contention.events)
	return out
}

// OnContention registers the operator-notification callback, invoked
// synchronously on every contention. Pass nil to clear it.
func (c *Cluster) OnContention(fn func(ContentionEvent)) {
	c.contention.mu.Lock()
	c.contention.onEvent = fn
	c.contention.mu.Unlock()
}
