package scads

import (
	"fmt"

	"scads/internal/consistency"
	"scads/internal/planner"
)

// DurabilityPlan reports, for one namespace, what its declared
// durability SLA requires given the failure model.
type DurabilityPlan struct {
	Table            string
	Target           float64 // declared survival probability
	NodeFailureProb  float64 // per repair window
	RequiredReplicas int
	CurrentReplicas  int // minimum across the namespace's ranges
}

// Satisfied reports whether the current replication meets the target.
func (p DurabilityPlan) Satisfied() bool {
	return p.CurrentReplicas >= p.RequiredReplicas
}

// PlanDurability evaluates every namespace with a declared durability
// SLA (Figure 4 row 5) against a node-failure probability per repair
// window, returning what each needs. This is the calculation the paper
// describes: "durability may require persisting a write to multiple
// machines"; the failure model supplies pFail, the spec supplies the
// target, and the system derives the replication factor.
func (c *Cluster) PlanDurability(pFailPerWindow float64) ([]DurabilityPlan, error) {
	c.mu.RLock()
	specs := make([]consistency.Spec, 0, len(c.specs))
	for _, s := range c.specs {
		specs = append(specs, s)
	}
	c.mu.RUnlock()
	consistency.SortSpecs(specs)

	var plans []DurabilityPlan
	for _, spec := range specs {
		if spec.Durability <= 0 {
			continue
		}
		need, err := consistency.RequiredReplicas(pFailPerWindow, spec.Durability)
		if err != nil {
			return nil, err
		}
		ns := planner.TableNamespace(spec.Namespace)
		m, ok := c.router.Map(ns)
		if !ok {
			return nil, fmt.Errorf("scads: durability spec for %q but no partition map", spec.Namespace)
		}
		cur := -1
		for _, rng := range m.Ranges() {
			if cur < 0 || len(rng.Replicas) < cur {
				cur = len(rng.Replicas)
			}
		}
		plans = append(plans, DurabilityPlan{
			Table:            spec.Namespace,
			Target:           spec.Durability,
			NodeFailureProb:  pFailPerWindow,
			RequiredReplicas: need,
			CurrentReplicas:  cur,
		})
	}
	return plans, nil
}

// EnforceDurability raises the replication factor of every
// under-replicated namespace (per PlanDurability) by copying each
// deficient range onto additional serving nodes. Returns the plans
// after enforcement.
func (c *Cluster) EnforceDurability(pFailPerWindow float64) ([]DurabilityPlan, error) {
	plans, err := c.PlanDurability(pFailPerWindow)
	if err != nil {
		return nil, err
	}
	for i, plan := range plans {
		if plan.Satisfied() {
			continue
		}
		ns := planner.TableNamespace(plan.Table)
		m, _ := c.router.Map(ns)
		for _, rng := range m.Ranges() {
			deficit := plan.RequiredReplicas - len(rng.Replicas)
			if deficit <= 0 {
				continue
			}
			var adds []string
			have := map[string]bool{}
			for _, id := range rng.Replicas {
				have[id] = true
			}
			for _, mem := range c.dir.Up() {
				if len(adds) == deficit {
					break
				}
				if !have[mem.ID] {
					adds = append(adds, mem.ID)
				}
			}
			if len(adds) < deficit {
				return plans, fmt.Errorf("scads: durability for %q needs %d replicas but only %d nodes are serving",
					plan.Table, plan.RequiredReplicas, len(c.dir.Up()))
			}
			key := rng.Start
			if key == nil {
				key = []byte{}
			}
			if err := c.ReplicateRangeTo(ns, key, adds); err != nil {
				return plans, err
			}
		}
		plans[i].CurrentReplicas = plan.RequiredReplicas
	}
	return plans, nil
}
